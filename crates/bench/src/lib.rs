//! Shared plumbing for the table/figure reproduction binaries.
//!
//! Each binary (`table1` … `table5`, `fig2`, `fig4`, `fig5`, `run_all`)
//! builds its experiments through `slimio-system`, renders its output with
//! `slimio-metrics::Table`, and prints the paper's reference numbers next
//! to the measured ones. [`paper`] holds every reference value, cited to
//! its table/figure.
//!
//! Command-line convention (hand-rolled; no CLI dependency):
//!
//! * `--scale <f>` — proportional scale (default 1/16; `1.0` = the
//!   paper's full configuration);
//! * `--seed <n>` — RNG seed (default 42);
//! * `--csv` — also emit CSV;
//! * `--jobs <n>` — run independent experiment cells (or, for `run_all`,
//!   whole suites) on `n` worker threads; `0` auto-detects one worker per
//!   available core;
//! * `--quick` — CI smoke mode: clamps the scale to 1/64;
//! * `--perf-json <path>` — write machine-readable per-experiment
//!   performance data (wall-clock, simulated events/sec, RPS, p999, WAF).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use slimio_des::SimTime;
use slimio_system::{Experiment, RunResult};

pub mod paper;

/// Parsed command-line options shared by all binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Proportional scale of workload + device.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Emit CSV after the table.
    pub csv: bool,
    /// Worker threads for independent experiment cells.
    pub jobs: usize,
    /// CI smoke mode (clamped scale).
    pub quick: bool,
    /// Where to write machine-readable perf data, if anywhere.
    pub perf_json: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0 / 16.0,
            seed: 42,
            csv: false,
            jobs: 1,
            quick: false,
            perf_json: None,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&args)
    }

    /// Parses an explicit argument list (testable core of [`Cli::parse`]).
    pub fn parse_from(args: &[String]) -> Cli {
        let mut cli = Cli::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"));
                }
                "--full" => cli.scale = 1.0,
                "--seed" => {
                    i += 1;
                    cli.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--csv" => cli.csv = true,
                "--jobs" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--jobs needs a non-negative integer"));
                    cli.jobs = if n == 0 { autodetect_jobs() } else { n };
                }
                "--quick" => cli.quick = true,
                "--perf-json" => {
                    i += 1;
                    cli.perf_json = Some(
                        args.get(i)
                            .cloned()
                            .unwrap_or_else(|| usage("--perf-json needs a path")),
                    );
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        if cli.quick {
            cli.scale = cli.scale.min(1.0 / 64.0);
        }
        cli
    }

    /// Applies the CLI to an experiment.
    pub fn configure(&self, mut e: Experiment) -> Experiment {
        e.scale = self.scale;
        e.seed = self.seed;
        e
    }
}

/// Worker count for `--jobs 0`: one per available core.
pub fn autodetect_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale f | --full] [--seed n] [--csv] [--jobs n (0 = auto)] [--quick] \
         [--perf-json path]"
    );
    std::process::exit(2);
}

/// Runs `f` over `items`, fanning out across `jobs` worker threads, and
/// returns the results **in item order** regardless of completion order.
/// Identical to a serial `map` when `jobs <= 1` — including, because every
/// experiment carries its own seed, identical output values.
pub fn run_cells<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *results[i].lock().unwrap() = Some(f(i, item));
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// One experiment's worth of machine-readable performance data.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// Experiment label (table row / figure series).
    pub label: String,
    /// Host wall-clock seconds spent simulating this cell.
    pub wall_secs: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Average requests/sec the simulated system achieved.
    pub avg_rps: f64,
    /// SET p999 latency in milliseconds.
    pub p999_ms: f64,
    /// Device write amplification.
    pub waf: f64,
}

impl PerfCell {
    /// Builds a cell from a finished run.
    pub fn from_run(label: &str, wall_secs: f64, r: &RunResult) -> PerfCell {
        PerfCell {
            label: label.to_string(),
            wall_secs,
            events: r.events,
            avg_rps: r.avg_rps,
            p999_ms: r.set_lat.p999() as f64 / 1e6,
            waf: r.waf.waf(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\":{},\"wall_secs\":{:.4},\"events\":{},\"events_per_sec\":{:.0},\
             \"avg_rps\":{:.2},\"set_p999_ms\":{:.3},\"waf\":{:.4}}}",
            json_string(&self.label),
            self.wall_secs,
            self.events,
            self.events as f64 / self.wall_secs.max(1e-9),
            self.avg_rps,
            self.p999_ms,
            self.waf
        )
    }
}

/// Minimal JSON string escaping (labels are plain ASCII in practice).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one suite's perf record as a JSON object.
pub fn perf_suite_json(binary: &str, wall_secs: f64, cells: &[PerfCell]) -> String {
    let events: u64 = cells.iter().map(|c| c.events).sum();
    let mut s = format!(
        "{{\"suite\":{},\"wall_secs\":{:.4},\"events\":{},\"events_per_sec\":{:.0},\
         \"experiments\":[",
        json_string(binary),
        wall_secs,
        events,
        events as f64 / wall_secs.max(1e-9)
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&c.to_json());
    }
    s.push_str("]}");
    s
}

/// Writes the suite perf record when `--perf-json` was given. Errors are
/// fatal: a CI consumer asked for the file.
pub fn maybe_write_perf(cli: &Cli, binary: &str, wall_secs: f64, cells: &[PerfCell]) {
    if let Some(path) = &cli.perf_json {
        std::fs::write(path, perf_suite_json(binary, wall_secs, cells) + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
}

/// Formats an RPS value the way the paper prints them.
pub fn fmt_rps(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a byte count as GB with two decimals (paper's memory columns).
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats a simulated duration as seconds.
pub fn fmt_secs(t: SimTime) -> String {
    format!("{:.0}", t.as_secs_f64())
}

/// Formats a latency in ms with three decimals (paper's p999 columns).
pub fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Mean of a slice of simulated durations.
pub fn mean_time(ts: &[SimTime]) -> SimTime {
    if ts.is_empty() {
        return SimTime::ZERO;
    }
    let sum: u128 = ts.iter().map(|t| t.as_nanos() as u128).sum();
    SimTime::from_nanos((sum / ts.len() as u128) as u64)
}

/// One-line summary of a run for progress logging.
pub fn summarize(label: &str, r: &RunResult) {
    eprintln!(
        "  [{label}] ops={} dur={:.1}s walOnly={:.0} walSnap={:.0} avg={:.0} p999={:.3}ms \
         snaps={} waf={:.3} gc={}",
        r.ops,
        r.duration.as_secs_f64(),
        r.wal_only_rps,
        r.wal_snap_rps,
        r.avg_rps,
        r.set_lat.p999() as f64 / 1e6,
        r.snapshot_times.len(),
        r.waf.waf(),
        r.gc_passes,
    );
    eprintln!(
        "      lat: p50={:.3} p99={:.3} p999={:.3} max={:.3} (ms)",
        r.set_lat.p50() as f64 / 1e6,
        r.set_lat.p99() as f64 / 1e6,
        r.set_lat.p999() as f64 / 1e6,
        r.set_lat.max() as f64 / 1e6
    );
    if let Some(&(m, i, d)) = r.snapshot_breakdown.first() {
        eprintln!(
            "      snap[0]: mem={:.0}% io={:.0}% dev={:.0}% t={:.2}s",
            m * 100.0,
            i * 100.0,
            d * 100.0,
            r.snapshot_times[0].as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gb(25_990_000_000), "25.99");
        assert_eq!(fmt_ms(5_103_000), "5.103");
        assert_eq!(fmt_secs(SimTime::from_secs(148)), "148");
        assert_eq!(fmt_rps(57481.86), "57481.86");
    }

    #[test]
    fn mean_time_of_durations() {
        let ts = [SimTime::from_secs(100), SimTime::from_secs(200)];
        assert_eq!(mean_time(&ts), SimTime::from_secs(150));
        assert_eq!(mean_time(&[]), SimTime::ZERO);
    }

    #[test]
    fn jobs_zero_autodetects_parallelism() {
        let args: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        let cli = Cli::parse_from(&args);
        assert_eq!(cli.jobs, autodetect_jobs());
        assert!(cli.jobs >= 1);

        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Cli::parse_from(&args).jobs, 3);
    }

    #[test]
    fn run_cells_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let f = |i: usize, &x: &u64| x * 31 + i as u64;
        let serial = run_cells(&items, 1, f);
        for jobs in [2, 4, 8] {
            assert_eq!(run_cells(&items, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_experiment_cells_match_serial() {
        use slimio_system::experiment::periodical;
        use slimio_system::{StackKind, WorkloadKind};

        let cells = [StackKind::KernelF2fs, StackKind::PassthruFdp];
        let run = |_i: usize, &stack: &StackKind| {
            let mut e = Experiment::new(WorkloadKind::RedisBench, stack, periodical());
            e.scale = 1.0 / 512.0;
            e.reps = 1;
            let r = e.run();
            (
                r.ops,
                r.events,
                r.duration,
                r.set_lat.p999(),
                r.waf.nand_pages(),
            )
        };
        let serial = run_cells(&cells, 1, run);
        let parallel = run_cells(&cells, 4, run);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn perf_json_shape() {
        let cells = [PerfCell {
            label: "a \"b\"".to_string(),
            wall_secs: 1.5,
            events: 3_000_000,
            avg_rps: 50_000.0,
            p999_ms: 2.25,
            waf: 1.0,
        }];
        let s = perf_suite_json("table9", 1.5, &cells);
        assert!(s.starts_with("{\"suite\":\"table9\""));
        assert!(s.contains("\"events\":3000000"));
        assert!(s.contains("\"events_per_sec\":2000000"));
        assert!(s.contains("\\\"b\\\""));
        assert!(s.ends_with("]}"));
    }
}
