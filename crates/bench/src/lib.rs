//! Shared plumbing for the table/figure reproduction binaries.
//!
//! Each binary (`table1` … `table5`, `fig2`, `fig4`, `fig5`, `run_all`)
//! builds its experiments through `slimio-system`, renders its output with
//! `slimio-metrics::Table`, and prints the paper's reference numbers next
//! to the measured ones. [`paper`] holds every reference value, cited to
//! its table/figure.
//!
//! Command-line convention (hand-rolled; no CLI dependency):
//!
//! * `--scale <f>` — proportional scale (default 1/16; `1.0` = the
//!   paper's full configuration);
//! * `--seed <n>` — RNG seed (default 42);
//! * `--csv` — also emit CSV.

#![warn(missing_docs)]

use slimio_des::SimTime;
use slimio_system::{Experiment, RunResult};

pub mod paper;

/// Parsed command-line options shared by all binaries.
#[derive(Clone, Copy, Debug)]
pub struct Cli {
    /// Proportional scale of workload + device.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Emit CSV after the table.
    pub csv: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0 / 16.0,
            seed: 42,
            csv: false,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Cli {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"));
                }
                "--full" => cli.scale = 1.0,
                "--seed" => {
                    i += 1;
                    cli.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--csv" => cli.csv = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
            i += 1;
        }
        cli
    }

    /// Applies the CLI to an experiment.
    pub fn configure(&self, mut e: Experiment) -> Experiment {
        e.scale = self.scale;
        e.seed = self.seed;
        e
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--scale f | --full] [--seed n] [--csv]");
    std::process::exit(2);
}

/// Formats an RPS value the way the paper prints them.
pub fn fmt_rps(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a byte count as GB with two decimals (paper's memory columns).
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats a simulated duration as seconds.
pub fn fmt_secs(t: SimTime) -> String {
    format!("{:.0}", t.as_secs_f64())
}

/// Formats a latency in ms with three decimals (paper's p999 columns).
pub fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Mean of a slice of simulated durations.
pub fn mean_time(ts: &[SimTime]) -> SimTime {
    if ts.is_empty() {
        return SimTime::ZERO;
    }
    let sum: u128 = ts.iter().map(|t| t.as_nanos() as u128).sum();
    SimTime::from_nanos((sum / ts.len() as u128) as u64)
}

/// One-line summary of a run for progress logging.
pub fn summarize(label: &str, r: &RunResult) {
    eprintln!(
        "  [{label}] ops={} dur={:.1}s walOnly={:.0} walSnap={:.0} avg={:.0} p999={:.3}ms \
         snaps={} waf={:.3} gc={}",
        r.ops,
        r.duration.as_secs_f64(),
        r.wal_only_rps,
        r.wal_snap_rps,
        r.avg_rps,
        r.set_lat.p999() as f64 / 1e6,
        r.snapshot_times.len(),
        r.waf.waf(),
        r.gc_passes,
    );
    eprintln!(
        "      lat: p50={:.3} p99={:.3} p999={:.3} max={:.3} (ms)",
        r.set_lat.p50() as f64 / 1e6,
        r.set_lat.p99() as f64 / 1e6,
        r.set_lat.p999() as f64 / 1e6,
        r.set_lat.max() as f64 / 1e6
    );
    if let Some(&(m, i, d)) = r.snapshot_breakdown.first() {
        eprintln!(
            "      snap[0]: mem={:.0}% io={:.0}% dev={:.0}% t={:.2}s",
            m * 100.0,
            i * 100.0,
            d * 100.0,
            r.snapshot_times[0].as_secs_f64()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_gb(25_990_000_000), "25.99");
        assert_eq!(fmt_ms(5_103_000), "5.103");
        assert_eq!(fmt_secs(SimTime::from_secs(148)), "148");
        assert_eq!(fmt_rps(57481.86), "57481.86");
    }

    #[test]
    fn mean_time_of_durations() {
        let ts = [SimTime::from_secs(100), SimTime::from_secs(200)];
        assert_eq!(mean_time(&ts), SimTime::from_secs(150));
        assert_eq!(mean_time(&[]), SimTime::ZERO);
    }
}
