//! Table 1 — Performance degradation and increased memory usage during
//! snapshot generation (baseline on EXT4 and F2FS).
//!
//! The paper runs the redis-benchmark workload once per file system under
//! Periodical-Log, comparing RPS and peak memory in the WAL-only and
//! Snapshot&WAL phases. Expected shape: RPS drops ~28–31 % during
//! snapshots, memory roughly doubles, and F2FS edges out EXT4.

use std::time::Instant;

use slimio_bench::{fmt_gb, fmt_rps, maybe_write_perf, paper, run_cells, summarize, Cli, PerfCell};
use slimio_metrics::Table;
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Table 1: Performance degradation and memory during snapshots\n");
    let mut table = Table::new([
        "FS",
        "phase",
        "RPS (meas)",
        "RPS (paper)",
        "PeakMem GB (meas)",
        "PeakMem GB (paper)",
    ]);
    let cells = [
        (StackKind::KernelExt4, &paper::TABLE1[0]),
        (StackKind::KernelF2fs, &paper::TABLE1[1]),
    ];
    let results = run_cells(&cells, cli.jobs, |_, &(stack, _)| {
        // Table 1's experiment runs once and relies on WAL-snapshots only
        // (§5.1: "the experiment runs once without generating an
        // On-Demand-Snapshot").
        let mut e = cli.configure(Experiment::new(
            WorkloadKind::RedisBench,
            stack,
            periodical(),
        ));
        e.on_demand_at_end = false;
        let t0 = Instant::now();
        let r = e.run();
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((_, p), (r, wall)) in cells.iter().zip(&results) {
        summarize(p.fs, r);
        perf.push(PerfCell::from_run(p.fs, *wall, r));
        // Memory scales with the dataset: report at paper scale.
        let scale_up = 1.0 / cli.scale;
        let mem_walonly = (r.mem_base as f64 * scale_up) as u64;
        let mem_snap = (r.mem_peak as f64 * scale_up) as u64;
        table.row([
            p.fs.to_string(),
            "WAL Only".into(),
            fmt_rps(r.wal_only_rps),
            fmt_rps(p.wal_only_rps),
            fmt_gb(mem_walonly),
            format!("{:.0}", p.wal_only_mem_gb),
        ]);
        table.row([
            p.fs.to_string(),
            "Snapshot&WAL".into(),
            fmt_rps(r.wal_snap_rps),
            fmt_rps(p.snap_wal_rps),
            fmt_gb(mem_snap),
            format!("{:.0}", p.snap_wal_mem_gb),
        ]);
    }
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
    maybe_write_perf(&cli, "table1", suite_start.elapsed().as_secs_f64(), &perf);
}
