//! Calibration probe: runs the four Table 3 cells and the four Table 4
//! cells at the requested scale and prints measured vs paper values with
//! relative errors. Used while tuning `CostModel`; kept as a shipping
//! diagnostic.

use slimio_bench::{fmt_ms, fmt_rps, mean_time, paper, summarize, Cli};
use slimio_metrics::Table;
use slimio_system::experiment::{always, periodical};
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let cells = [
        (
            WorkloadKind::RedisBench,
            periodical(),
            StackKind::KernelF2fs,
            &paper::TABLE3[0],
        ),
        (
            WorkloadKind::RedisBench,
            periodical(),
            StackKind::PassthruFdp,
            &paper::TABLE3[1],
        ),
        (
            WorkloadKind::RedisBench,
            always(),
            StackKind::KernelF2fs,
            &paper::TABLE3[2],
        ),
        (
            WorkloadKind::RedisBench,
            always(),
            StackKind::PassthruFdp,
            &paper::TABLE3[3],
        ),
        (
            WorkloadKind::YcsbA,
            periodical(),
            StackKind::KernelF2fs,
            &paper::TABLE4[0],
        ),
        (
            WorkloadKind::YcsbA,
            periodical(),
            StackKind::PassthruFdp,
            &paper::TABLE4[1],
        ),
        (
            WorkloadKind::YcsbA,
            always(),
            StackKind::KernelF2fs,
            &paper::TABLE4[2],
        ),
        (
            WorkloadKind::YcsbA,
            always(),
            StackKind::PassthruFdp,
            &paper::TABLE4[3],
        ),
    ];
    let mut table = Table::new([
        "cell",
        "walOnly(meas)",
        "walOnly(paper)",
        "avg(meas)",
        "avg(paper)",
        "snapT(meas)",
        "snapT(paper)",
        "p999(meas)",
        "p999(paper)",
        "waf(meas)",
        "waf(paper)",
    ]);
    for (wl, policy, stack, p) in cells {
        let e = cli.configure(Experiment::new(wl, stack, policy));
        let r = e.run();
        let label = format!("{:?}/{}", wl, stack.label());
        summarize(&label, &r);
        let snap_meas = mean_time(&r.snapshot_times).as_secs_f64() / cli.scale;
        table.row([
            format!("{label}/{policy:?}"),
            fmt_rps(r.wal_only_rps),
            fmt_rps(p.wal_only_rps),
            fmt_rps(r.avg_rps),
            fmt_rps(p.avg_rps),
            format!("{snap_meas:.0}"),
            format!("{:.0}", p.snap_secs),
            fmt_ms(r.set_lat.p999()),
            fmt_ms((p.set_p999_ms * 1e6) as u64),
            format!("{:.3}", r.waf.waf()),
            format!("{:.2}", p.waf),
        ]);
    }
    println!("{}", table.render());
}
