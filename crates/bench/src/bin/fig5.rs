//! Figure 5 — Runtime RPS: Baseline vs full SlimIO (FDP-backed).
//!
//! Same pressure as Figure 4, but SlimIO now runs on the FDP device:
//! per-stream Reclaim Units mean deallocations free whole RUs, GC never
//! copies, and RPS stays in a tight band (paper: 70–80 k) except during
//! snapshot windows.

use slimio_bench::{paper, summarize, Cli};
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    println!("Figure 5: runtime RPS, Baseline vs SlimIO (FDP)\n");
    for stack in [StackKind::KernelF2fs, StackKind::PassthruFdp] {
        let mut e = cli.configure(Experiment::new(WorkloadKind::RedisBench, stack, periodical()));
        if stack != StackKind::KernelF2fs {
            e.device_ratio = 0.70; // same pressure as Figure 4
        }
        let r = e.run();
        summarize(stack.label(), &r);
        println!("--- {} (RPS over time) ---", stack.label());
        print!("{}", r.timeline.ascii_chart(8));
        let rates = r.timeline.rates();
        let nonzero: Vec<f64> = rates.iter().copied().filter(|&x| x > 0.0).collect();
        let mean = nonzero.iter().sum::<f64>() / nonzero.len().max(1) as f64;
        let min = nonzero.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = nonzero.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  mean={mean:.0} min={min:.0} max={max:.0} waf={:.3} gc_passes={}\n",
            r.waf.waf(),
            r.gc_passes
        );
    }
    println!(
        "(paper: SlimIO+FDP stable between {:.0} and {:.0} RPS except during snapshots; WAF 1.00)",
        paper::FIG5_RPS_BAND.0,
        paper::FIG5_RPS_BAND.1
    );
}
