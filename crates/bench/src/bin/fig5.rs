//! Figure 5 — Runtime RPS: Baseline vs full SlimIO (FDP-backed).
//!
//! Same pressure as Figure 4, but SlimIO now runs on the FDP device:
//! per-stream Reclaim Units mean deallocations free whole RUs, GC never
//! copies, and RPS stays in a tight band (paper: 70–80 k) except during
//! snapshot windows.

use std::time::Instant;

use slimio_bench::{maybe_write_perf, paper, run_cells, summarize, Cli, PerfCell};
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Figure 5: runtime RPS, Baseline vs SlimIO (FDP)\n");
    let cells = [StackKind::KernelF2fs, StackKind::PassthruFdp];
    let results = run_cells(&cells, cli.jobs, |_, &stack| {
        let mut e = cli.configure(Experiment::new(
            WorkloadKind::RedisBench,
            stack,
            periodical(),
        ));
        if stack != StackKind::KernelF2fs {
            e.device_ratio = 0.70; // same pressure as Figure 4
        }
        let t0 = Instant::now();
        let r = e.run();
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for (stack, (r, wall)) in cells.iter().zip(&results) {
        summarize(stack.label(), r);
        perf.push(PerfCell::from_run(stack.label(), *wall, r));
        println!("--- {} (RPS over time) ---", stack.label());
        print!("{}", r.timeline.ascii_chart(8));
        let rates = r.timeline.rates();
        let nonzero: Vec<f64> = rates.iter().copied().filter(|&x| x > 0.0).collect();
        let mean = nonzero.iter().sum::<f64>() / nonzero.len().max(1) as f64;
        let min = nonzero.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = nonzero.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  mean={mean:.0} min={min:.0} max={max:.0} waf={:.3} gc_passes={}\n",
            r.waf.waf(),
            r.gc_passes
        );
    }
    println!(
        "(paper: SlimIO+FDP stable between {:.0} and {:.0} RPS except during snapshots; WAF 1.00)",
        paper::FIG5_RPS_BAND.0,
        paper::FIG5_RPS_BAND.1
    );
    maybe_write_perf(&cli, "fig5", suite_start.elapsed().as_secs_f64(), &perf);
}
