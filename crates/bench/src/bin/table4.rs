//! Table 4 — Overall evaluation with the YCSB-A workload.
//!
//! Same structure as Table 3 but with YCSB-A (8 threads, 2 KiB values,
//! 50:50 GET:SET, Zipfian, no GC pressure) and an extra GET p999 column.
//! Expected shape: smaller but consistent SlimIO wins under Periodical
//! (+15 % WAL-only RPS), dramatic wins under Always (~2×), snapshot ~10 %
//! faster, both tails lower.

use std::time::Instant;

use slimio_bench::{
    fmt_gb, fmt_ms, fmt_rps, maybe_write_perf, mean_time, paper, run_cells, summarize, Cli,
    PerfCell,
};
use slimio_metrics::Table;
use slimio_system::experiment::{always, periodical};
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Table 4: Overall evaluation, YCSB-A workload\n");
    let cells = [
        (periodical(), StackKind::KernelF2fs, &paper::TABLE4[0]),
        (periodical(), StackKind::PassthruFdp, &paper::TABLE4[1]),
        (always(), StackKind::KernelF2fs, &paper::TABLE4[2]),
        (always(), StackKind::PassthruFdp, &paper::TABLE4[3]),
    ];
    let mut table = Table::new([
        "config",
        "WALonly RPS",
        "(paper)",
        "W&S RPS",
        "(paper)",
        "Avg RPS",
        "(paper)",
        "Mem GB",
        "PeakMem GB",
        "SnapT s",
        "(paper)",
        "SET p999 ms",
        "(paper)",
        "GET p999 ms",
        "(paper)",
    ]);
    let results = run_cells(&cells, cli.jobs, |_, &(policy, stack, _)| {
        let e = cli.configure(Experiment::new(WorkloadKind::YcsbA, stack, policy));
        let t0 = Instant::now();
        let r = e.run();
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((_, _, p), (r, wall)) in cells.iter().zip(&results) {
        summarize(p.label, r);
        perf.push(PerfCell::from_run(p.label, *wall, r));
        let scale_up = 1.0 / cli.scale;
        table.row([
            p.label.to_string(),
            fmt_rps(r.wal_only_rps),
            fmt_rps(p.wal_only_rps),
            fmt_rps(r.wal_snap_rps),
            fmt_rps(p.wal_snap_rps),
            fmt_rps(r.avg_rps),
            fmt_rps(p.avg_rps),
            fmt_gb((r.mem_base as f64 * scale_up) as u64),
            fmt_gb((r.mem_peak as f64 * scale_up) as u64),
            format!(
                "{:.0}",
                mean_time(&r.snapshot_times).as_secs_f64() * scale_up
            ),
            format!("{:.0}", p.snap_secs),
            fmt_ms(r.set_lat.p999()),
            format!("{:.3}", p.set_p999_ms),
            fmt_ms(r.get_lat.p999()),
            format!("{:.3}", p.get_p999_ms),
        ]);
    }
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
    maybe_write_perf(&cli, "table4", suite_start.elapsed().as_secs_f64(), &perf);
}
