//! `live_rps` — live-mode throughput roll-up: a real `slimio-server`
//! instance on an ephemeral port, driven by the closed-loop bench client,
//! for both backends × both fsync policies × pipeline depth {1, 16}.
//!
//! Unlike the `table*`/`fig*` binaries these numbers are wall-clock, not
//! discrete-event simulation: they measure the server's batched write
//! path (group commit + vectored submission) end to end, plus GET-heavy
//! (90% GET / 10% SET) cells that exercise the lock-free read path both
//! with it enabled and with every command forced through the single
//! writer (`get90-writerpath`), and a replication read-scaling cell
//! (`get90-replica`) where a WAL-shipping replica serves the GET side
//! while the primary takes the SETs. An `overload` cell floods a
//! deliberately slowed device behind a small admission queue — `-BUSY`
//! refusals are expected there, and its p999 column is the latency of
//! probe GETs issued during the flood, the read-path-stays-bounded
//! acceptance number. Three headline acceptance ratios
//! print at the end: pipelined Always-Log throughput over unbatched,
//! read-path GET-heavy throughput over the single-writer routing, and
//! replica-fanout GET-heavy throughput over the single node.

use std::time::{Duration, Instant};

use slimio_bench::{maybe_write_perf, Cli, PerfCell};
use slimio_des::SimTime;
use slimio_imdb::LogPolicy;
use slimio_metrics::Histogram;
use slimio_server::bench::{self, BenchOpts};
use slimio_server::resp::Value;
use slimio_server::{BackendKind, GovernorOpts, Server, ServerOpts, Store, StoreConfig};

struct Cell {
    label: String,
    policy: LogPolicy,
    kind: BackendKind,
    pipeline: usize,
    /// Percent of bench requests issued as GETs.
    get_ratio: u8,
    /// Serve reads on connection threads (false = pre-read-path
    /// single-writer routing, the A/B baseline).
    read_path: bool,
    /// Writer shards (1 = classic single-writer path).
    shards: usize,
}

fn main() {
    let cli = Cli::parse();
    let total_start = Instant::now();
    // Default scale (1/16) drives 20k requests per cell; --quick clamps
    // the scale to 1/64 (5k requests) for CI smoke runs.
    let requests = ((320_000.0 * cli.scale) as u64).max(1_000);

    let policies = [
        ("always", LogPolicy::Always),
        (
            "everysec",
            LogPolicy::Periodical {
                flush_interval: SimTime::from_secs(1),
            },
        ),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (pname, policy) in policies {
        for kind in [BackendKind::Kernel, BackendKind::Passthru] {
            for pipeline in [1usize, 16] {
                cells.push(Cell {
                    label: format!("{}/{pname}/P{pipeline}", kind.name()),
                    policy,
                    kind,
                    pipeline,
                    get_ratio: 0,
                    read_path: true,
                    shards: 1,
                });
            }
        }
    }
    // GET-heavy (90/10) pipelined cells, with the read path on and with
    // everything forced through the writer — same seed and config, so
    // the pair is the read-path acceptance comparison.
    for kind in [BackendKind::Kernel, BackendKind::Passthru] {
        for (suffix, read_path) in [("get90", true), ("get90-writerpath", false)] {
            cells.push(Cell {
                label: format!("{}/always/P16/{suffix}", kind.name()),
                policy: LogPolicy::Always,
                kind,
                pipeline: 16,
                get_ratio: 90,
                read_path,
                shards: 1,
            });
        }
    }
    // Shard sweep: set-heavy pipelined passthru cells at 1/2/4 writer
    // shards — same seed and config, so the trio is the sharded-write-
    // path scaling comparison. Each shard carries its own writer thread,
    // group-commit batch, WAL region, and FDP placement ID; WAF must
    // stay 1.00 in every cell (asserted below) because shard WAL streams
    // land in distinct reclaim units.
    for shards in [1usize, 2, 4] {
        cells.push(Cell {
            label: format!("passthru/always/P16/shards{shards}"),
            policy: LogPolicy::Always,
            kind: BackendKind::Passthru,
            pipeline: 16,
            get_ratio: 0,
            read_path: true,
            shards,
        });
    }

    println!("live-mode RPS ({} requests per cell, 4 clients)", requests);
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "cell", "rps", "p999_us", "waf"
    );

    let mut perf: Vec<PerfCell> = Vec::new();
    let mut rps_by_label: Vec<(String, f64)> = Vec::new();
    for cell in &cells {
        let store = Store::new(StoreConfig {
            kind: cell.kind,
            fdp: cell.kind == BackendKind::Passthru,
            ratio: 1.0 / 64.0,
            shards: cell.shards,
        });
        let handle = Server::start(
            store,
            ServerOpts {
                policy: cell.policy,
                read_path: cell.read_path,
                ..ServerOpts::default()
            },
        )
        .expect("server start");
        let opts = BenchOpts {
            port: handle.port(),
            clients: 4,
            requests,
            value_len: 128,
            keyspace: 10_000,
            seed: cli.seed,
            pipeline: cell.pipeline,
            get_ratio: cell.get_ratio,
            ..BenchOpts::default()
        };
        let started = Instant::now();
        let report = bench::run(&opts).expect("bench run");
        let wall = started.elapsed().as_secs_f64();
        let store = handle.shutdown();
        let waf = store.device().lock().unwrap().waf();
        assert_eq!(report.errors, 0, "{}: bench saw error replies", cell.label);
        if cell.shards > 1 {
            assert!(
                waf < 1.005,
                "{}: sharded FDP cell must keep WAF at 1.00, got {waf:.4}",
                cell.label
            );
        }
        println!(
            "{:<28} {:>12.0} {:>12.1} {:>10.2}",
            cell.label,
            report.rps(),
            report.hist.p999() as f64 / 1000.0,
            waf
        );
        perf.push(PerfCell {
            label: cell.label.clone(),
            wall_secs: wall,
            events: report.ops,
            avg_rps: report.rps(),
            p999_ms: report.hist.p999() as f64 / 1e6,
            waf,
        });
        rps_by_label.push((cell.label.clone(), report.rps()));
    }

    // Read-scaling cell: a replica attaches to the primary, full-syncs,
    // and serves the GET side of the 90/10 split locally while the
    // primary takes the SET side — the fan-out topology from the README
    // quickstart. Throughput counts both sides over the shared wall.
    for kind in [BackendKind::Kernel, BackendKind::Passthru] {
        let mk_store = || {
            Store::new(StoreConfig {
                kind,
                fdp: kind == BackendKind::Passthru,
                ratio: 1.0 / 64.0,
                shards: 1,
            })
        };
        let primary = Server::start(
            mk_store(),
            ServerOpts {
                policy: LogPolicy::Always,
                ..ServerOpts::default()
            },
        )
        .expect("primary start");
        let pport = primary.port();
        let replica = Server::start(
            mk_store(),
            ServerOpts {
                policy: LogPolicy::Always,
                replica_of: Some(format!("127.0.0.1:{pport}")),
                ..ServerOpts::default()
            },
        )
        .expect("replica start");
        // Preload the keyspace so replica GETs return real values, then
        // pin the replica to the preload's stream offset.
        let preload = bench::run(&BenchOpts {
            port: pport,
            clients: 4,
            requests: 10_000,
            value_len: 128,
            keyspace: 10_000,
            seed: cli.seed,
            pipeline: 16,
            ..BenchOpts::default()
        })
        .expect("preload");
        assert_eq!(preload.errors, 0, "preload saw error replies");
        let caught_up = bench::oneshot(
            "127.0.0.1",
            pport,
            &[b"WAIT".to_vec(), b"1".to_vec(), b"30000".to_vec()],
        )
        .expect("WAIT");
        assert!(
            matches!(caught_up, slimio_server::resp::Value::Int(n) if n >= 1),
            "replica never caught up: {caught_up:?}"
        );

        let set_opts = BenchOpts {
            port: pport,
            clients: 2,
            requests: requests / 10,
            value_len: 128,
            keyspace: 10_000,
            seed: cli.seed,
            pipeline: 16,
            ..BenchOpts::default()
        };
        let get_opts = BenchOpts {
            port: replica.port(),
            clients: 4,
            requests: requests - requests / 10,
            value_len: 128,
            keyspace: 10_000,
            seed: cli.seed + 1,
            pipeline: 16,
            get_ratio: 100,
            ..BenchOpts::default()
        };
        let started = Instant::now();
        let writer = std::thread::spawn(move || bench::run(&set_opts));
        let get_report = bench::run(&get_opts).expect("replica GET bench");
        let set_report = writer
            .join()
            .expect("writer bench panicked")
            .expect("SET bench");
        let wall = started.elapsed().as_secs_f64();
        replica.shutdown();
        let store = primary.shutdown();
        let waf = store.device().lock().unwrap().waf();
        assert_eq!(get_report.errors, 0, "replica GETs saw error replies");
        assert_eq!(set_report.errors, 0, "primary SETs saw error replies");

        let ops = get_report.ops + set_report.ops;
        let rps = ops as f64 / wall.max(1e-9);
        let mut hist = get_report.hist;
        hist.merge(&set_report.hist);
        let label = format!("{}/always/P16/get90-replica", kind.name());
        println!(
            "{:<28} {:>12.0} {:>12.1} {:>10.2}",
            label,
            rps,
            hist.p999() as f64 / 1000.0,
            waf
        );
        perf.push(PerfCell {
            label: label.clone(),
            wall_secs: wall,
            events: ops,
            avg_rps: rps,
            p999_ms: hist.p999() as f64 / 1e6,
            waf,
        });
        rps_by_label.push((label, rps));
    }

    // Overload cell: a deliberately slowed device behind a small
    // admission queue, flooded with pipelined SETs while a probe
    // connection measures GET latency. Unlike every other cell this one
    // EXPECTS error replies — overflow writes are refused with `-BUSY`;
    // what must hold is the bound: the queue high-water stays at its cap
    // and probe GETs stay fast while the write path is saturated. The
    // cell's p999 column is the probe GET latency, not the flood's.
    {
        let queue_cap = 16usize;
        let store = Store::new(StoreConfig {
            kind: BackendKind::Kernel,
            fdp: false,
            ratio: 1.0 / 64.0,
            shards: 1,
        });
        let handle = Server::start(
            store,
            ServerOpts {
                policy: LogPolicy::Always,
                govern: GovernorOpts {
                    queue_cap,
                    admit_park: Duration::from_millis(1),
                    ..GovernorOpts::default()
                },
                ..ServerOpts::default()
            },
        )
        .expect("overload server start");
        let port = handle.port();
        let one = |parts: &[&[u8]]| {
            let args: Vec<Vec<u8>> = parts.iter().map(|p| p.to_vec()).collect();
            bench::oneshot_timeout("127.0.0.1", port, &args, Some(Duration::from_secs(10)))
                .expect("oneshot under overload")
        };
        assert_eq!(one(&[b"SET", b"probe", b"v"]), Value::ok());
        assert_eq!(one(&[b"DEBUG", b"FAULT", b"slow@1:5000"]), Value::ok());

        let flood_opts = BenchOpts {
            port,
            clients: 4,
            requests: (requests / 4).max(2_000),
            value_len: 128,
            keyspace: 10_000,
            seed: cli.seed,
            pipeline: 16,
            ..BenchOpts::default()
        };
        let started = Instant::now();
        let flood = std::thread::spawn(move || bench::run(&flood_opts));
        let mut probe = Histogram::new();
        while !flood.is_finished() {
            let t0 = Instant::now();
            let v = one(&[b"GET", b"probe"]);
            assert_eq!(v, Value::bulk(b"v"), "probe GET failed under flood");
            probe.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            std::thread::sleep(Duration::from_millis(2));
        }
        let report = flood.join().expect("flood thread").expect("flood bench");
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(one(&[b"DEBUG", b"FAULT", b"OFF"]), Value::ok());
        let Value::Bulk(text) = one(&[b"INFO"]) else {
            panic!("INFO did not answer after overload");
        };
        let text = String::from_utf8_lossy(&text).into_owned();
        let field = |name: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!("{name}:")))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("INFO missing {name}"))
        };
        let hwm = field("writer_queue_hwm");
        assert!(
            hwm as usize <= queue_cap,
            "queue high-water {hwm} escaped its cap {queue_cap}"
        );
        // Bounded, not instant: the probe shares the host with a flood.
        assert!(
            probe.p999() < 2_000_000_000,
            "probe GET p999 {} ns is unbounded under flood",
            probe.p999()
        );
        let store = handle.shutdown();
        let waf = store.device().lock().unwrap().waf();
        let label = "kernel/always/P16/overload".to_string();
        println!(
            "{:<28} {:>12.0} {:>12.1} {:>10.2}",
            label,
            report.rps(),
            probe.p999() as f64 / 1000.0,
            waf
        );
        println!(
            "overload governance: queue hwm {hwm}/{queue_cap}, busy_refused {}, \
             {} of {} flood replies were -BUSY, probe GET p99 {:.1} us",
            field("busy_refused"),
            report.errors,
            report.ops,
            probe.p99() as f64 / 1000.0,
        );
        perf.push(PerfCell {
            label: label.clone(),
            wall_secs: wall,
            events: report.ops,
            avg_rps: report.rps(),
            p999_ms: probe.p999() as f64 / 1e6,
            waf,
        });
        rps_by_label.push((label, report.rps()));
    }

    // Headline: group commit must make pipelined Always-Log at least as
    // fast as the unbatched loop (in practice far faster).
    let rps = |label: &str| {
        rps_by_label
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| *r)
            .expect("cell ran")
    };
    for kind in ["kernel", "passthru"] {
        let base = rps(&format!("{kind}/always/P1"));
        let piped = rps(&format!("{kind}/always/P16"));
        println!(
            "group-commit speedup ({kind}, always): {:.2}x (P16 {:.0} rps vs P1 {:.0} rps)",
            piped / base.max(1e-9),
            piped,
            base
        );
    }
    // Headline 2: the routing A/B — GET-heavy throughput with reads on
    // the connection threads vs forced through the single writer. The
    // gap is the cross-thread hop cost per GET, so it widens with core
    // count; on a single-core host the closed loop is commit-latency
    // bound and the ratio is modest.
    for kind in ["kernel", "passthru"] {
        let writer = rps(&format!("{kind}/always/P16/get90-writerpath"));
        let read = rps(&format!("{kind}/always/P16/get90"));
        println!(
            "read-path speedup ({kind}, 90% GET): {:.2}x (read-path {:.0} rps vs writer-path {:.0} rps)",
            read / writer.max(1e-9),
            read,
            writer
        );
    }
    // Headline: shard scaling — the set-heavy pipelined passthru cell at
    // 2 and 4 writer shards over the single-shard baseline. Scaling
    // tracks available cores: each shard's writer burns its own CPU on
    // a core of its own, so a multi-core host approaches linear and a
    // single-core host approaches parity (the sweep still proves the
    // sharded path costs nothing and WAF holds at 1.00).
    {
        let base = rps("passthru/always/P16/shards1");
        for n in [2usize, 4] {
            let sharded = rps(&format!("passthru/always/P16/shards{n}"));
            println!(
                "shard scaling (passthru, always, set-heavy): {n} shards {:.2}x \
                 ({:.0} rps vs {:.0} rps at 1 shard)",
                sharded / base.max(1e-9),
                sharded,
                base
            );
        }
    }
    // Headline 3: read scaling — the same 90/10 split with the GET side
    // fanned out to a replica vs served by the single node. Both nodes
    // share this host's cores (and the replica is applying the write
    // stream while it serves), so < 1.0x is normal here; the cell's job
    // is to track absolute replica-read throughput end to end. On
    // separate hosts the fanout adds capacity instead of splitting it.
    for kind in ["kernel", "passthru"] {
        let single = rps(&format!("{kind}/always/P16/get90"));
        let fanned = rps(&format!("{kind}/always/P16/get90-replica"));
        println!(
            "replica read scaling ({kind}, 90% GET): {:.2}x (replica-fanout {:.0} rps vs single-node {:.0} rps)",
            fanned / single.max(1e-9),
            fanned,
            single
        );
    }

    maybe_write_perf(&cli, "live_rps", total_start.elapsed().as_secs_f64(), &perf);
}
