//! Figure 2 — Analysis of snapshot duration and throughput (baseline).
//!
//! (a) Snapshot-time distribution: how much of the snapshot lane's wall
//!     time is in-memory work (scan/compress/copy), kernel I/O path, and
//!     SSD waiting, across three scenarios: Snapshot-Only, Snapshot&WAL,
//!     and Snapshot&WAL under GC. Paper: ~15 % kernel share in
//!     Snapshot-Only, growing with contention, with SSD time exploding
//!     under GC.
//! (b) Throughput: snapshot throughput vs WAL throughput vs ideal.
//!     Paper: snapshot throughput 30–45 % below WAL throughput; WAL
//!     stays stable under GC while snapshots degrade.

use std::time::Instant;

use slimio_bench::{maybe_write_perf, run_cells, summarize, Cli, PerfCell};
use slimio_metrics::Table;
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, RunResult, StackKind, WorkloadKind};

fn scenario(cli: &Cli, wal_active: bool, gc_pressure: bool) -> RunResult {
    let mut e = cli.configure(Experiment::new(
        WorkloadKind::RedisBench,
        StackKind::KernelF2fs,
        periodical(),
    ));
    if gc_pressure {
        // An aged device: every logical LBA valid at the FTL, so all
        // writes during the run contend with sustained GC.
        e.age_device = true;
    }
    if wal_active {
        e.run()
    } else {
        // Snapshot-Only: preload the dataset, run zero queries, snapshot
        // the idle system.
        let device = e.build_device();
        let path = e.build_path(std::sync::Arc::clone(&device));
        let gen = e.build_workload();
        let keys = gen.key_space();
        let mut cfg = e.system_config();
        cfg.ops_limit = Some(0);
        cfg.on_demand_at_end = true;
        let mut model = slimio_system::SystemModel::new(cfg, gen, path);
        model.preload(keys);
        model.run()
    }
}

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Figure 2: snapshot duration distribution and throughput (baseline)\n");
    let cells = [
        ("Snapshot Only", "snapshot-only", false, false),
        ("Snapshot & WAL", "snapshot+wal", true, false),
        ("Snapshot & WAL (under GC)", "snapshot+wal+gc", true, true),
    ];
    let results = run_cells(&cells, cli.jobs, |_, &(_, _, wal_active, gc_pressure)| {
        let t0 = Instant::now();
        let r = scenario(&cli, wal_active, gc_pressure);
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    let mut runs = Vec::new();
    for ((title, label, _, _), (r, wall)) in cells.iter().zip(results.iter()) {
        summarize(label, r);
        perf.push(PerfCell::from_run(label, *wall, r));
        runs.push((*title, r));
    }

    println!("(a) Snapshot time distribution (fractions of snapshot duration)");
    let mut a = Table::new([
        "scenario",
        "in-memory",
        "kernel I/O path",
        "SSD wait",
        "snap time s",
    ]);
    for (label, r) in &runs {
        // Average the per-snapshot breakdowns.
        let n = r.snapshot_breakdown.len().max(1) as f64;
        let (mut mem, mut io, mut dev) = (0.0, 0.0, 0.0);
        for &(m, i, d) in &r.snapshot_breakdown {
            mem += m / n;
            io += i / n;
            dev += d / n;
        }
        let mean_snap: f64 = r
            .snapshot_times
            .iter()
            .map(|t| t.as_secs_f64())
            .sum::<f64>()
            / r.snapshot_times.len().max(1) as f64;
        a.row([
            label.to_string(),
            format!("{:.1}%", mem * 100.0),
            format!("{:.1}%", io * 100.0),
            format!("{:.1}%", dev * 100.0),
            format!("{:.1}", mean_snap / cli.scale),
        ]);
    }
    println!("{}", a.render());
    println!("(paper: kernel path ≈ 15% in Snapshot-Only, rising with WAL contention;");
    println!(" SSD share grows sharply under GC)\n");

    println!("(b) Throughput analysis (MB/s)");
    let mut b = Table::new(["scenario", "snapshot MB/s", "WAL MB/s", "snap/WAL ratio"]);
    for (label, r) in &runs {
        let snap: f64 = r.snapshot_mbps.iter().sum::<f64>() / r.snapshot_mbps.len().max(1) as f64;
        let wal: f64 =
            r.wal_mbps_during_snap.iter().sum::<f64>() / r.wal_mbps_during_snap.len().max(1) as f64;
        let ratio = if wal > 0.0 { snap / wal } else { f64::NAN };
        b.row([
            label.to_string(),
            format!("{snap:.1}"),
            format!("{wal:.1}"),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{}", b.render());
    println!("(paper: snapshot throughput 30–45% below WAL throughput when concurrent;");
    println!(" WAL throughput stable under GC, snapshot throughput degrades)");
    maybe_write_perf(&cli, "fig2", suite_start.elapsed().as_secs_f64(), &perf);
}
