//! Table 3 — Overall evaluation with the Redis benchmark workload.
//!
//! Four configurations ({Periodical, Always} × {Baseline, SlimIO}), each
//! reporting WAL-only RPS + memory, WAL&Snapshot RPS + memory, average
//! RPS, snapshot time, SET p999, and SSD WAF. Expected shape: SlimIO wins
//! WAL-only RPS by ~30 % (Periodical) to ~55 % (Always), snapshots ~25 %
//! faster, p999 roughly halved, WAF 1.00 vs 1.14–1.24 — while WAL&Snapshot
//! RPS barely differs (fork/CoW dominates there, §5.2).

use std::time::Instant;

use slimio_bench::{
    fmt_gb, fmt_ms, fmt_rps, maybe_write_perf, mean_time, paper, run_cells, summarize, Cli,
    PerfCell,
};
use slimio_metrics::Table;
use slimio_system::experiment::{always, periodical};
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Table 3: Overall evaluation, Redis benchmark workload\n");
    let cells = [
        (periodical(), StackKind::KernelF2fs, &paper::TABLE3[0]),
        (periodical(), StackKind::PassthruFdp, &paper::TABLE3[1]),
        (always(), StackKind::KernelF2fs, &paper::TABLE3[2]),
        (always(), StackKind::PassthruFdp, &paper::TABLE3[3]),
    ];
    let mut table = Table::new([
        "config",
        "WALonly RPS",
        "(paper)",
        "WALonly Mem",
        "W&S RPS",
        "(paper)",
        "W&S Mem",
        "Avg RPS",
        "(paper)",
        "SnapT s",
        "(paper)",
        "SET p999 ms",
        "(paper)",
        "WAF",
        "(paper)",
    ]);
    let results = run_cells(&cells, cli.jobs, |_, &(policy, stack, _)| {
        let e = cli.configure(Experiment::new(WorkloadKind::RedisBench, stack, policy));
        let t0 = Instant::now();
        let r = e.run();
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((_, _, p), (r, wall)) in cells.iter().zip(&results) {
        summarize(p.label, r);
        perf.push(PerfCell::from_run(p.label, *wall, r));
        let scale_up = 1.0 / cli.scale;
        table.row([
            p.label.to_string(),
            fmt_rps(r.wal_only_rps),
            fmt_rps(p.wal_only_rps),
            fmt_gb((r.mem_base as f64 * scale_up) as u64),
            fmt_rps(r.wal_snap_rps),
            fmt_rps(p.wal_snap_rps),
            fmt_gb((r.mem_peak as f64 * scale_up) as u64),
            fmt_rps(r.avg_rps),
            fmt_rps(p.avg_rps),
            format!(
                "{:.0}",
                mean_time(&r.snapshot_times).as_secs_f64() * scale_up
            ),
            format!("{:.0}", p.snap_secs),
            fmt_ms(r.set_lat.p999()),
            format!("{:.3}", p.set_p999_ms),
            format!("{:.2}", r.waf.waf()),
            format!("{:.2}", p.waf),
        ]);
    }
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
    maybe_write_perf(&cli, "table3", suite_start.elapsed().as_secs_f64(), &perf);
}
