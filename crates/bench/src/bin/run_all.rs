//! Runs every table/figure binary and reprints each suite's output in a
//! stable order. Useful for regenerating EXPERIMENTS.md data in one shot:
//!
//! ```sh
//! cargo run --release -p slimio-bench --bin run_all -- --jobs 4
//! ```
//!
//! * `--jobs <n>` runs up to `n` suites concurrently (each suite is an
//!   independent child process with its own simulated world, so results
//!   are identical to a serial run — output is buffered and printed in
//!   the fixed suite order either way).
//! * A per-suite wall-clock summary is printed at the end.
//! * A machine-readable roll-up (per-suite and per-experiment wall-clock,
//!   simulated events/sec, RPS, p999, WAF) is written to
//!   `BENCH_runall.json` (override with `--perf-json <path>`).
//! * Exits nonzero if any suite fails.

use std::io::Write;
use std::process::Command;
use std::time::Instant;

use slimio_bench::{json_string, run_cells, Cli};

const BINS: [&str; 10] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig2",
    "fig4",
    "fig5",
    "ablations",
    "live_rps",
];

struct SuiteRun {
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    wall_secs: f64,
    status: String,
    success: bool,
    perf: Option<String>,
}

fn main() {
    let cli = Cli::parse();
    let total_start = Instant::now();

    // Forward everything except the flags that are run_all's own concern:
    // children run serially inside themselves, and each child gets its own
    // perf-json path under target/…/perf/.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut fwd: Vec<String> = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--jobs" | "--perf-json" => i += 1, // skip flag + value
            other => fwd.push(other.to_string()),
        }
        i += 1;
    }

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let perf_dir = exe_dir.join("perf");
    std::fs::create_dir_all(&perf_dir).expect("create perf dir");

    let runs = run_cells(&BINS, cli.jobs, |_, bin| {
        let perf_path = perf_dir.join(format!("{bin}.json"));
        let t0 = Instant::now();
        let out = Command::new(exe_dir.join(bin))
            .args(&fwd)
            .arg("--perf-json")
            .arg(&perf_path)
            .output();
        let wall_secs = t0.elapsed().as_secs_f64();
        match out {
            Ok(o) => SuiteRun {
                stdout: o.stdout,
                stderr: o.stderr,
                wall_secs,
                status: if o.status.success() {
                    "ok".to_string()
                } else {
                    format!("FAILED ({})", o.status)
                },
                success: o.status.success(),
                perf: std::fs::read_to_string(&perf_path)
                    .ok()
                    .map(|s| s.trim().to_string()),
            },
            Err(e) => SuiteRun {
                stdout: Vec::new(),
                stderr: format!("failed to launch {bin}: {e} (build with --release first)\n")
                    .into_bytes(),
                wall_secs,
                status: format!("LAUNCH FAILED ({e})"),
                success: false,
                perf: None,
            },
        }
    });

    // Stable-order replay of each suite's captured output.
    for (bin, run) in BINS.iter().zip(&runs) {
        println!("\n================ {bin} ================\n");
        std::io::stdout().write_all(&run.stdout).expect("stdout");
        std::io::stderr().write_all(&run.stderr).expect("stderr");
        if !run.success {
            eprintln!("{bin}: {}", run.status);
        }
    }

    // Timing summary.
    let total_secs = total_start.elapsed().as_secs_f64();
    let serial_secs: f64 = runs.iter().map(|r| r.wall_secs).sum();
    println!("\n================ timing ================\n");
    for (bin, run) in BINS.iter().zip(&runs) {
        println!("  {bin:<10} {:>8.2}s  {}", run.wall_secs, run.status);
    }
    println!(
        "  {:<10} {total_secs:>8.2}s  (sum of suites {serial_secs:.2}s, --jobs {})",
        "total", cli.jobs
    );

    // Machine-readable roll-up.
    let merged_path = cli
        .perf_json
        .clone()
        .unwrap_or_else(|| "BENCH_runall.json".to_string());
    let mut json = format!(
        "{{\"jobs\":{},\"wall_secs\":{total_secs:.4},\"suite_wall_secs_sum\":{serial_secs:.4},\
         \"suites\":[",
        cli.jobs
    );
    for (i, (bin, run)) in BINS.iter().zip(&runs).enumerate() {
        if i > 0 {
            json.push(',');
        }
        match &run.perf {
            Some(p) => json.push_str(p),
            None => json.push_str(&format!(
                "{{\"suite\":{},\"wall_secs\":{:.4},\"error\":{}}}",
                json_string(bin),
                run.wall_secs,
                json_string(&run.status)
            )),
        }
    }
    json.push_str("]}\n");
    std::fs::write(&merged_path, json).unwrap_or_else(|e| panic!("writing {merged_path}: {e}"));
    println!("  perf roll-up written to {merged_path}");

    if runs.iter().any(|r| !r.success) {
        std::process::exit(1);
    }
}
