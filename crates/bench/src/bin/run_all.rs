//! Runs every table/figure binary's logic in sequence and reminds where
//! each lives. Useful for regenerating EXPERIMENTS.md data in one shot:
//!
//! ```sh
//! cargo run --release -p slimio-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table1", "table2", "table3", "table4", "table5", "fig2", "fig4", "fig5",
        "ablations",
    ];
    for bin in bins {
        println!("\n================ {bin} ================\n");
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .args(&args)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e} (build with --release first)"),
        }
    }
}
