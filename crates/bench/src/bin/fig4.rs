//! Figure 4 — Runtime RPS: Baseline vs SlimIO *without* FDP.
//!
//! Both systems run the redis-benchmark workload (Periodical-Log) on a
//! conventional SSD under capacity pressure. Expected shape: the baseline
//! rides the page cache through GC events and stays comparatively stable;
//! SlimIO-without-FDP writes directly to the device, so GC stalls fill its
//! ring and RPS nosedives — occasionally to ~0 — during GC windows.

use std::time::Instant;

use slimio_bench::{maybe_write_perf, run_cells, summarize, Cli, PerfCell};
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, RunResult, StackKind, WorkloadKind};

fn run(cli: &Cli, stack: StackKind) -> RunResult {
    let mut e = cli.configure(Experiment::new(
        WorkloadKind::RedisBench,
        stack,
        periodical(),
    ));
    if stack != StackKind::KernelF2fs {
        // The paper's five repetitions leave the direct-write device at
        // high FTL utilization; the baseline hides behind the page cache
        // (and needs the full device for its file footprint), the raw
        // paths do not.
        e.device_ratio = 0.70;
    }
    e.run()
}

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Figure 4: runtime RPS, Baseline vs SlimIO without FDP\n");
    let cells = [
        ("Baseline", StackKind::KernelF2fs),
        ("SlimIO w/o FDP", StackKind::PassthruConventional),
    ];
    let results = run_cells(&cells, cli.jobs, |_, &(_, stack)| {
        let t0 = Instant::now();
        let r = run(&cli, stack);
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((label, stack), (r, wall)) in cells.iter().zip(&results) {
        summarize(stack.label(), r);
        perf.push(PerfCell::from_run(label, *wall, r));
    }

    for ((label, _), (r, _)) in cells.iter().zip(&results) {
        println!("--- {label} (RPS over time) ---");
        print!("{}", r.timeline.ascii_chart(8));
        let rates = r.timeline.rates();
        let nonzero: Vec<f64> = rates.iter().copied().filter(|&x| x > 0.0).collect();
        let min = nonzero.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = nonzero.iter().cloned().fold(0.0, f64::max);
        let deep_dips = rates.iter().filter(|&&x| x > 0.0 && x < max * 0.2).count();
        println!(
            "  min={min:.0} max={max:.0} buckets<20%-of-peak={deep_dips} gc_passes={}\n",
            r.gc_passes
        );
    }
    println!("(paper: baseline relatively stable through GC; SlimIO w/o FDP");
    println!(" nosedives — occasionally to zero — during GC events)");
    maybe_write_perf(&cli, "fig4", suite_start.elapsed().as_secs_f64(), &perf);
}
