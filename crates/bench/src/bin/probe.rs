//! Developer diagnostic: where does main-lane time go on the baseline?

use std::sync::Arc;

use slimio_bench::Cli;
use slimio_kpath::FsProfile;
use slimio_system::experiment::periodical;
use slimio_system::stack::KernelPath;
use slimio_system::{Experiment, StackKind, SystemModel, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let e = cli.configure(Experiment::new(
        WorkloadKind::RedisBench,
        StackKind::KernelF2fs,
        periodical(),
    ));
    let device = e.build_device();
    let path = KernelPath::new(Arc::clone(&device), FsProfile::f2fs());
    let gen = e.build_workload();
    let model = SystemModel::new(e.system_config(), gen, path);
    let (r, path) = model.run_keep_path();
    eprintln!(
        "ops={} dur={:.2}s walOnly={:.0} walSnap={:.0} snaps={:?}",
        r.ops,
        r.duration.as_secs_f64(),
        r.wal_only_rps,
        r.wal_snap_rps,
        r.snapshot_times
            .iter()
            .map(|t| t.as_secs_f64())
            .collect::<Vec<_>>()
    );
    eprintln!(
        "main-lane: throttle={:.3}s journal={:.3}s syncWait={:.3}s",
        path.wal_throttle.as_secs_f64(),
        path.wal_journal.as_secs_f64(),
        path.wal_sync_wait.as_secs_f64(),
    );
    eprintln!(
        "snap-lane: io_cpu={:.3}s dev_wait={:.3}s fs_cpu={:.3}s",
        path.snap_io_cpu().as_secs_f64(),
        path.snap_dev_wait().as_secs_f64(),
        path.fs_cpu_snapshot().as_secs_f64(),
    );
    eprintln!(
        "cache: hits={} misses={} dirty={} journalBusy={:.3}s",
        path.fs().cache().hits(),
        path.fs().cache().misses(),
        path.fs().cache().dirty_count(),
        path.fs().journal_busy().as_secs_f64(),
    );
}

// Re-exported trait methods used above.
use slimio_system::stack::PathModel;
