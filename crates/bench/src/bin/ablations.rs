//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. **SQPOLL on the Snapshot-Path** (§4.1): submission-side CPU with and
//!    without the polling kernel thread.
//! 2. **FDP Reclaim-Unit size** (§4.3): WAF and GC traffic as the RU
//!    shrinks/grows around the paper's 1 GiB (scaled), under the
//!    generational WAL/snapshot pattern.
//! 3. **Placement-ID assignment** (§4.3): separated streams vs everything
//!    on one PID vs conventional — isolating *where* the WAF 1.00 comes
//!    from.
//!
//! ```sh
//! cargo run --release -p slimio-bench --bin ablations
//! ```

use std::sync::Arc;
use std::time::Instant;

use slimio_bench::{maybe_write_perf, run_cells, Cli, PerfCell};
use slimio_des::SimTime;
use slimio_ftl::FtlConfig;
use slimio_metrics::Table;
use slimio_nand::{Geometry, Latencies};
use slimio_nvme::{DeviceConfig, NvmeDevice};
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};
use slimio_uring::PassthruCosts;
use std::sync::Mutex;

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();

    // ---- 1. SQPOLL ablation: submission CPU per command -------------
    println!("Ablation 1: SQPOLL vs enter-driven submission (CPU per command)\n");
    let costs = PassthruCosts::default();
    let mut t = Table::new(["mode", "1 cmd", "16 cmds", "256 cmds"]);
    t.row([
        "SQPOLL (ring push only)".to_string(),
        format!("{}", costs.submit_sqpoll(1)),
        format!("{}", costs.submit_sqpoll(16)),
        format!("{}", costs.submit_sqpoll(256)),
    ]);
    t.row([
        "enter-driven (io_uring_enter)".to_string(),
        format!("{}", costs.submit_enter(1)),
        format!("{}", costs.submit_enter(16)),
        format!("{}", costs.submit_enter(256)),
    ]);
    println!("{}", t.render());
    println!("(the syscall amortizes with batch size; SQPOLL removes it entirely —");
    println!(" why the paper runs the snapshot process's frequent small writes in SQPOLL)\n");

    // ---- 2. RU-size sweep -------------------------------------------
    println!("Ablation 2: FDP Reclaim-Unit size vs WAF (generational pattern)\n");
    let geometry = Geometry::scaled(0.02);
    let mut t = Table::new(["RU size", "RUs", "WAF", "GC copies"]);
    for ru_mb in [16u64, 32, 64, 128, 256] {
        let cfg = FtlConfig::fdp_with_ru(geometry, ru_mb << 20);
        if cfg.validate().is_err() {
            t.row([format!("{ru_mb} MiB"), "-".into(), "n/a".into(), "-".into()]);
            continue;
        }
        let dev = Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig {
            ftl: cfg,
            latencies: Latencies::default(),
            store_data: false,
            honor_deallocate: true,
        })));
        let waf = generational_pattern(&dev, true);
        let d = dev.lock().unwrap();
        t.row([
            format!("{ru_mb} MiB"),
            cfg.total_rus().to_string(),
            format!("{waf:.4}"),
            d.ftl_stats().waf.gc_copied_pages().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(with whole-generation lifetimes, any RU size keeps WAF at 1.00 as long");
    println!(" as streams stay separated — the separation, not the RU size, is load-bearing)\n");

    // ---- 3. Placement assignment ------------------------------------
    println!("Ablation 3: placement assignment (same traffic, same device geometry)\n");
    let mut t = Table::new(["assignment", "WAF", "GC copies"]);
    for (label, fdp, separate) in [
        ("conventional device", false, false),
        ("FDP, one PID for everything", true, false),
        ("FDP, per-lifetime PIDs (SlimIO)", true, true),
    ] {
        let cfg = if fdp {
            FtlConfig::fdp_with_ru(geometry, 64 << 20)
        } else {
            FtlConfig::conventional(geometry)
        };
        let dev = Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig {
            ftl: cfg,
            latencies: Latencies::default(),
            store_data: false,
            honor_deallocate: true,
        })));
        let waf = generational_pattern(&dev, separate);
        let d = dev.lock().unwrap();
        t.row([
            label.to_string(),
            format!("{waf:.4}"),
            d.ftl_stats().waf.gc_copied_pages().to_string(),
        ]);
    }
    println!("{}", t.render());

    // ---- 4. End-to-end: SQPOLL off on the snapshot path -------------
    println!("\nAblation 4: whole-system run, SlimIO vs SlimIO-without-FDP vs baseline\n");
    let mut t = Table::new(["stack", "WAL-only RPS", "avg RPS", "p999 ms", "WAF"]);
    let cells = [
        StackKind::KernelF2fs,
        StackKind::PassthruConventional,
        StackKind::PassthruFdp,
    ];
    let results = run_cells(&cells, cli.jobs, |_, &stack| {
        let mut e = cli.configure(Experiment::new(
            WorkloadKind::RedisBench,
            stack,
            periodical(),
        ));
        e.scale = (cli.scale / 4.0).max(1.0 / 512.0); // quick cells
        let t0 = Instant::now();
        let r = e.run();
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for (stack, (r, wall)) in cells.iter().zip(&results) {
        perf.push(PerfCell::from_run(stack.label(), *wall, r));
        t.row([
            stack.label().to_string(),
            format!("{:.0}", r.wal_only_rps),
            format!("{:.0}", r.avg_rps),
            format!("{:.3}", r.set_lat.p999() as f64 / 1e6),
            format!("{:.3}", r.waf.waf()),
        ]);
    }
    println!("{}", t.render());
    maybe_write_perf(
        &cli,
        "ablations",
        suite_start.elapsed().as_secs_f64(),
        &perf,
    );
}

/// The §3.1.4 lifetime pattern: interleaved WAL + snapshot traffic with
/// whole-generation deallocation, plus one long-lived backup stream.
fn generational_pattern(dev: &Arc<Mutex<NvmeDevice>>, separate: bool) -> f64 {
    let t = SimTime::ZERO;
    let capacity = dev.lock().unwrap().capacity_blocks();
    let layout = slimio::layout::Layout::default_for(capacity);
    let pid = |stream: u8| if separate { stream } else { 0 };
    let chunk = 64u64;
    let gen_pages = layout.wal_lbas * 8 / 10;
    let snap_pages = layout.slot_lbas * 9 / 10;
    // Long-lived backup in slot 2.
    {
        let mut d = dev.lock().unwrap();
        let mut p = 0;
        while p < snap_pages {
            let n = chunk.min(snap_pages - p);
            d.write(layout.slot_lba(2) + p, n, pid(3), None, t).unwrap();
            p += n;
        }
    }
    let mut wal_head = 0u64;
    for generation in 0..5u64 {
        let slot = layout.slot_lba((generation % 2) as usize);
        let (mut w, mut s) = (0u64, 0u64);
        let mut d = dev.lock().unwrap();
        while w < gen_pages || s < snap_pages {
            if w < gen_pages {
                let off = wal_head % layout.wal_lbas;
                let n = chunk.min(gen_pages - w).min(layout.wal_lbas - off);
                d.write(layout.wal_lba + off, n, pid(1), None, t).unwrap();
                wal_head += n;
                w += n;
            }
            if s < snap_pages {
                let n = chunk.min(snap_pages - s);
                d.write(slot + s, n, pid(2), None, t).unwrap();
                s += n;
            }
        }
        // Rotation: trim the dead WAL generation and the demoted slot.
        let dead_start = wal_head - w;
        let mut p = dead_start;
        while p < wal_head {
            let off = p % layout.wal_lbas;
            let n = (layout.wal_lbas - off).min(wal_head - p);
            d.deallocate(layout.wal_lba + off, n, t).unwrap();
            p += n;
        }
        d.deallocate(
            layout.slot_lba(((generation + 1) % 2) as usize),
            layout.slot_lbas,
            t,
        )
        .unwrap();
    }
    dev.lock().unwrap().waf()
}
