//! Table 5 — Recovery from a ~20 GB snapshot.
//!
//! The baseline reads the RDB through the page cache with per-read
//! syscalls; SlimIO streams the slot with batched passthru reads into a
//! read-ahead buffer. Paper: 55.38 s / 374.77 MB/s vs 44.12 s /
//! 471.13 MB/s (~20 % faster).

use std::time::Instant;

use slimio_bench::{maybe_write_perf, paper, run_cells, Cli, PerfCell};
use slimio_metrics::Table;
use slimio_system::experiment::periodical;
use slimio_system::recovery::run_recovery;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Table 5: Recovery evaluation on snapshot\n");
    // The paper's snapshot: ~20 GB covering 5.3 M entries; scaled.
    let stream_bytes = (20.0e9 * cli.scale) as u64;
    let entries = (5_300_000.0 * cli.scale) as u64;
    let mut table = Table::new([
        "stack",
        "Recovery s (meas, paper-scale)",
        "(paper)",
        "MB/s (meas)",
        "(paper)",
    ]);
    let cells = [
        (
            StackKind::KernelF2fs,
            paper::TABLE5_BASELINE_SECS,
            paper::TABLE5_BASELINE_MBPS,
        ),
        (
            StackKind::PassthruFdp,
            paper::TABLE5_SLIMIO_SECS,
            paper::TABLE5_SLIMIO_MBPS,
        ),
    ];
    let results = run_cells(&cells, cli.jobs, |_, &(stack, _, _)| {
        let e = cli.configure(Experiment::new(
            WorkloadKind::RedisBench,
            stack,
            periodical(),
        ));
        let t0 = Instant::now();
        let r = run_recovery(&e, entries, stream_bytes);
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((stack, p_secs, p_mbps), (r, wall)) in cells.iter().zip(&results) {
        // Recovery runs have no query phase, so the RunResult-derived
        // perf fields stay zero; wall-clock is the interesting number.
        perf.push(PerfCell {
            label: stack.label().to_string(),
            wall_secs: *wall,
            events: 0,
            avg_rps: 0.0,
            p999_ms: 0.0,
            waf: 0.0,
        });
        table.row([
            stack.label().to_string(),
            format!("{:.2}", r.time.as_secs_f64() / cli.scale),
            format!("{p_secs:.2}"),
            format!("{:.2}", r.mbps),
            format!("{p_mbps:.2}"),
        ]);
    }
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
    maybe_write_perf(&cli, "table5", suite_start.elapsed().as_secs_f64(), &perf);
}
