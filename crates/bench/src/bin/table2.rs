//! Table 2 — CPU usage of the file-system write path in the snapshot
//! process (F2FS baseline).
//!
//! Two scenarios: Snapshot-Only (no query traffic) and Snapshot&WAL. The
//! paper measures 11.53 % and 13.61 % of snapshot-process CPU cycles in
//! the F2FS write path — "control path" overhead the passthru path
//! removes entirely.

use slimio_bench::{paper, summarize, Cli};
use slimio_metrics::Table;
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    println!("Table 2: CPU usage of the F2FS write path during snapshots\n");
    let mut table = Table::new(["scenario", "FS-path CPU % (meas)", "FS-path CPU % (paper)"]);

    // Snapshot-Only: no measured query phase — preload the dataset, then
    // take one on-demand snapshot. Modeled by running zero ops with an
    // end-of-run snapshot over a preloaded keyspace; we reuse the YCSB
    // preload plumbing with the redis-benchmark value size by running a
    // minimal op count.
    let mut only = cli.configure(Experiment::new(
        WorkloadKind::RedisBench,
        StackKind::KernelF2fs,
        periodical(),
    ));
    only.on_demand_at_end = true;
    // Shrink the measured phase to (almost) nothing: the snapshot then
    // runs against an idle system.
    only.scale = cli.scale; // dataset builds during the short run
    let r_only = run_snapshot_only(only);
    summarize("snapshot-only", &r_only);

    let with_wal = cli.configure(Experiment::new(
        WorkloadKind::RedisBench,
        StackKind::KernelF2fs,
        periodical(),
    ));
    let r_wal = with_wal.run();
    summarize("snapshot&wal", &r_wal);

    table.row([
        "Snapshot Only".to_string(),
        format!("{:.2}", r_only.fs_cpu_fraction * 100.0),
        format!("{:.2}", paper::TABLE2_SNAPSHOT_ONLY_PCT),
    ]);
    table.row([
        "Snapshot&WAL".to_string(),
        format!("{:.2}", r_wal.fs_cpu_fraction * 100.0),
        format!("{:.2}", paper::TABLE2_SNAPSHOT_WAL_PCT),
    ]);
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
}

/// Preloads the dataset, runs zero queries, and takes one on-demand
/// snapshot against the idle system — the paper's Snapshot-Only scenario.
fn run_snapshot_only(e: Experiment) -> slimio_system::RunResult {
    let device = e.build_device();
    let path = e.build_path(std::sync::Arc::clone(&device));
    let gen = e.build_workload();
    let keys = gen.key_space();
    let mut sys_cfg = e.system_config();
    sys_cfg.ops_limit = Some(0);
    sys_cfg.on_demand_at_end = true;
    let mut model = slimio_system::SystemModel::new(sys_cfg, gen, path);
    model.preload(keys);
    model.run()
}
