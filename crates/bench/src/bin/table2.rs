//! Table 2 — CPU usage of the file-system write path in the snapshot
//! process (F2FS baseline).
//!
//! Two scenarios: Snapshot-Only (no query traffic) and Snapshot&WAL. The
//! paper measures 11.53 % and 13.61 % of snapshot-process CPU cycles in
//! the F2FS write path — "control path" overhead the passthru path
//! removes entirely.

use std::time::Instant;

use slimio_bench::{maybe_write_perf, paper, run_cells, summarize, Cli, PerfCell};
use slimio_metrics::Table;
use slimio_system::experiment::periodical;
use slimio_system::{Experiment, StackKind, WorkloadKind};

fn main() {
    let cli = Cli::parse();
    let suite_start = Instant::now();
    println!("Table 2: CPU usage of the F2FS write path during snapshots\n");
    let mut table = Table::new(["scenario", "FS-path CPU % (meas)", "FS-path CPU % (paper)"]);

    let cells = [
        ("snapshot-only", paper::TABLE2_SNAPSHOT_ONLY_PCT),
        ("snapshot&wal", paper::TABLE2_SNAPSHOT_WAL_PCT),
    ];
    let results = run_cells(&cells, cli.jobs, |_, &(label, _)| {
        let mut e = cli.configure(Experiment::new(
            WorkloadKind::RedisBench,
            StackKind::KernelF2fs,
            periodical(),
        ));
        let t0 = Instant::now();
        let r = if label == "snapshot-only" {
            // Snapshot-Only: no measured query phase — preload the
            // dataset, run zero queries, then take one on-demand snapshot
            // against the idle system.
            e.on_demand_at_end = true;
            run_snapshot_only(e)
        } else {
            e.run()
        };
        (r, t0.elapsed().as_secs_f64())
    });
    let mut perf = Vec::new();
    for ((label, paper_pct), (r, wall)) in cells.iter().zip(&results) {
        summarize(label, r);
        perf.push(PerfCell::from_run(label, *wall, r));
        let row_label = if *label == "snapshot-only" {
            "Snapshot Only"
        } else {
            "Snapshot&WAL"
        };
        table.row([
            row_label.to_string(),
            format!("{:.2}", r.fs_cpu_fraction * 100.0),
            format!("{paper_pct:.2}"),
        ]);
    }
    println!("{}", table.render());
    if cli.csv {
        println!("{}", table.render_csv());
    }
    maybe_write_perf(&cli, "table2", suite_start.elapsed().as_secs_f64(), &perf);
}

/// Preloads the dataset, runs zero queries, and takes one on-demand
/// snapshot against the idle system — the paper's Snapshot-Only scenario.
fn run_snapshot_only(e: Experiment) -> slimio_system::RunResult {
    let device = e.build_device();
    let path = e.build_path(std::sync::Arc::clone(&device));
    let gen = e.build_workload();
    let keys = gen.key_space();
    let mut sys_cfg = e.system_config();
    sys_cfg.ops_limit = Some(0);
    sys_cfg.on_demand_at_end = true;
    let mut model = slimio_system::SystemModel::new(sys_cfg, gen, path);
    model.preload(keys);
    model.run()
}
