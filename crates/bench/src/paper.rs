//! The paper's published numbers, cited to their tables/figures, printed
//! alongside measured values so every binary is self-checking.

/// One row of Table 3/4 (overall evaluation).
#[derive(Clone, Copy, Debug)]
pub struct OverallRow {
    /// Row label, e.g. "Periodical / Baseline".
    pub label: &'static str,
    /// WAL-only phase RPS.
    pub wal_only_rps: f64,
    /// WAL-only memory, GB.
    pub wal_only_mem_gb: f64,
    /// WAL&Snapshot phase RPS.
    pub wal_snap_rps: f64,
    /// WAL&Snapshot memory, GB.
    pub wal_snap_mem_gb: f64,
    /// Average RPS.
    pub avg_rps: f64,
    /// Snapshot time, seconds.
    pub snap_secs: f64,
    /// SET p999, ms.
    pub set_p999_ms: f64,
    /// GET p999, ms (Table 4 only; 0 when not reported).
    pub get_p999_ms: f64,
    /// SSD WAF (Table 3 only; 0 when not reported).
    pub waf: f64,
}

/// Table 3 — Redis benchmark workload.
pub const TABLE3: [OverallRow; 4] = [
    OverallRow {
        label: "Periodical/Baseline",
        wal_only_rps: 57481.86,
        wal_only_mem_gb: 25.99,
        wal_snap_rps: 42300.51,
        wal_snap_mem_gb: 52.27,
        avg_rps: 47993.20,
        snap_secs: 148.0,
        set_p999_ms: 5.103,
        get_p999_ms: 0.0,
        waf: 1.14,
    },
    OverallRow {
        label: "Periodical/SlimIO",
        wal_only_rps: 75675.66,
        wal_only_mem_gb: 25.99,
        wal_snap_rps: 42516.72,
        wal_snap_mem_gb: 51.99,
        avg_rps: 55042.87,
        snap_secs: 110.0,
        set_p999_ms: 2.351,
        get_p999_ms: 0.0,
        waf: 1.00,
    },
    OverallRow {
        label: "Always/Baseline",
        wal_only_rps: 21415.85,
        wal_only_mem_gb: 25.99,
        wal_snap_rps: 16418.87,
        wal_snap_mem_gb: 51.98,
        avg_rps: 19043.80,
        snap_secs: 139.0,
        set_p999_ms: 7.822,
        get_p999_ms: 0.0,
        waf: 1.24,
    },
    OverallRow {
        label: "Always/SlimIO",
        wal_only_rps: 33127.81,
        wal_only_mem_gb: 25.99,
        wal_snap_rps: 25541.80,
        wal_snap_mem_gb: 51.99,
        avg_rps: 31407.03,
        snap_secs: 109.0,
        set_p999_ms: 3.343,
        get_p999_ms: 0.0,
        waf: 1.00,
    },
];

/// Table 4 — YCSB-A workload.
pub const TABLE4: [OverallRow; 4] = [
    OverallRow {
        label: "Periodical/Baseline",
        wal_only_rps: 65120.76,
        wal_only_mem_gb: 27.13,
        wal_snap_rps: 53774.30,
        wal_snap_mem_gb: 54.26,
        avg_rps: 61695.78,
        snap_secs: 253.0,
        set_p999_ms: 0.711,
        get_p999_ms: 0.673,
        waf: 0.0,
    },
    OverallRow {
        label: "Periodical/SlimIO",
        wal_only_rps: 74911.06,
        wal_only_mem_gb: 27.13,
        wal_snap_rps: 56239.39,
        wal_snap_mem_gb: 54.26,
        avg_rps: 68244.45,
        snap_secs: 225.0,
        set_p999_ms: 0.635,
        get_p999_ms: 0.577,
        waf: 0.0,
    },
    OverallRow {
        label: "Always/Baseline",
        wal_only_rps: 6234.89,
        wal_only_mem_gb: 27.13,
        wal_snap_rps: 4987.45,
        wal_snap_mem_gb: 54.26,
        avg_rps: 6191.70,
        snap_secs: 239.0,
        set_p999_ms: 2.105,
        get_p999_ms: 2.091,
        waf: 0.0,
    },
    OverallRow {
        label: "Always/SlimIO",
        wal_only_rps: 12536.86,
        wal_only_mem_gb: 27.13,
        wal_snap_rps: 10285.05,
        wal_snap_mem_gb: 54.26,
        avg_rps: 12028.85,
        snap_secs: 224.0,
        set_p999_ms: 0.950,
        get_p999_ms: 0.933,
        waf: 0.0,
    },
];

/// Table 1 — RPS & peak memory with/without snapshots (baseline only).
pub struct Table1Row {
    /// File system.
    pub fs: &'static str,
    /// WAL-only RPS.
    pub wal_only_rps: f64,
    /// WAL-only peak memory, GB.
    pub wal_only_mem_gb: f64,
    /// Snapshot&WAL RPS.
    pub snap_wal_rps: f64,
    /// Snapshot&WAL peak memory, GB.
    pub snap_wal_mem_gb: f64,
}

/// Table 1 reference values.
pub const TABLE1: [Table1Row; 2] = [
    Table1Row {
        fs: "EXT4",
        wal_only_rps: 59512.38,
        wal_only_mem_gb: 26.0,
        snap_wal_rps: 42885.10,
        snap_wal_mem_gb: 51.0,
    },
    Table1Row {
        fs: "F2FS",
        wal_only_rps: 61327.40,
        wal_only_mem_gb: 26.0,
        snap_wal_rps: 43111.97,
        snap_wal_mem_gb: 52.0,
    },
];

/// Table 2 — CPU usage of the F2FS write path in the snapshot process.
pub const TABLE2_SNAPSHOT_ONLY_PCT: f64 = 11.53;
/// Table 2, Snapshot&WAL scenario.
pub const TABLE2_SNAPSHOT_WAL_PCT: f64 = 13.61;

/// Table 5 — recovery of a ~20 GB snapshot.
pub const TABLE5_BASELINE_SECS: f64 = 55.38;
/// Table 5 baseline throughput (MB/s).
pub const TABLE5_BASELINE_MBPS: f64 = 374.77;
/// Table 5 SlimIO recovery time (s).
pub const TABLE5_SLIMIO_SECS: f64 = 44.12;
/// Table 5 SlimIO throughput (MB/s).
pub const TABLE5_SLIMIO_MBPS: f64 = 471.13;

/// Figure 2a — share of snapshot time spent in the kernel I/O path,
/// Snapshot-Only scenario ("approximately 15%", §3.1.1).
pub const FIG2_KERNEL_SHARE_SNAPSHOT_ONLY: f64 = 0.15;

/// Figure 5 — SlimIO+FDP steady-state RPS band.
pub const FIG5_RPS_BAND: (f64, f64) = (70_000.0, 80_000.0);
