//! NVMe command and completion types.

use slimio_des::SimTime;
use slimio_ftl::{FtlError, Lpn, Pid};

/// The I/O command set the emulated controller accepts.
///
/// `Write` carries an optional placement identifier, mirroring the NVMe 2.0
/// directive fields that FDP uses; conventional devices ignore it. Payload
/// data is passed separately on the device API so that timing-only callers
/// (the discrete-event simulation) don't have to materialize buffers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Write `blocks` logical blocks starting at `lba`, tagged with `pid`.
    Write {
        /// Starting logical block address.
        lba: Lpn,
        /// Number of 4 KiB logical blocks.
        blocks: u64,
        /// FDP placement identifier (0 = default stream).
        pid: Pid,
    },
    /// Read `blocks` logical blocks starting at `lba`.
    Read {
        /// Starting logical block address.
        lba: Lpn,
        /// Number of 4 KiB logical blocks.
        blocks: u64,
    },
    /// Deallocate (trim) `blocks` logical blocks starting at `lba`.
    Deallocate {
        /// Starting logical block address.
        lba: Lpn,
        /// Number of 4 KiB logical blocks.
        blocks: u64,
    },
    /// Flush — a barrier that completes when all previously submitted
    /// writes have reached the NAND array.
    Flush,
}

impl Command {
    /// Number of logical blocks this command touches.
    pub fn blocks(&self) -> u64 {
        match self {
            Command::Write { blocks, .. }
            | Command::Read { blocks, .. }
            | Command::Deallocate { blocks, .. } => *blocks,
            Command::Flush => 0,
        }
    }
}

/// Completion record for a submitted command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Virtual time at which the command finished on the device.
    pub done_at: SimTime,
    /// Pages the device relocated for GC while serving this command
    /// (0 in the common case; large values mark the GC stalls of Figure 4).
    pub gc_copied: u64,
    /// Erase-block erases triggered while serving this command.
    pub gc_erases: u64,
}

/// Device-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The FTL rejected the operation.
    Ftl(FtlError),
    /// A read touched an LBA that has never been written (and strict reads
    /// were requested).
    UnwrittenRead {
        /// The offending LBA.
        lba: Lpn,
    },
    /// Payload length does not match the block count.
    PayloadSize {
        /// Bytes expected (`blocks * 4096`).
        expected: usize,
        /// Bytes provided.
        got: usize,
    },
    /// Device is powered off (crash injection).
    PoweredOff,
    /// A transient failure injected by an armed fault plan. Nothing was
    /// persisted; the host may retry the command.
    Injected,
}

impl From<FtlError> for DeviceError {
    fn from(e: FtlError) -> Self {
        DeviceError::Ftl(e)
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Ftl(e) => write!(f, "ftl: {e}"),
            DeviceError::UnwrittenRead { lba } => write!(f, "read of unwritten lba {lba}"),
            DeviceError::PayloadSize { expected, got } => {
                write!(f, "payload size {got} != expected {expected}")
            }
            DeviceError::PoweredOff => write!(f, "device is powered off"),
            DeviceError::Injected => write!(f, "injected transient write failure"),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_block_counts() {
        assert_eq!(
            Command::Write {
                lba: 0,
                blocks: 8,
                pid: 1
            }
            .blocks(),
            8
        );
        assert_eq!(Command::Read { lba: 0, blocks: 3 }.blocks(), 3);
        assert_eq!(Command::Flush.blocks(), 0);
    }

    #[test]
    fn error_display() {
        let e = DeviceError::PayloadSize {
            expected: 4096,
            got: 100,
        };
        assert!(e.to_string().contains("4096"));
        let e = DeviceError::UnwrittenRead { lba: 7 };
        assert!(e.to_string().contains("7"));
    }
}
