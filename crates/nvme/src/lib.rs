//! An emulated NVMe SSD with Flexible Data Placement support.
//!
//! This crate plays the role of the FEMU-emulated FDP device in the paper's
//! testbed. It binds together:
//!
//! * the FTL state machine (`slimio-ftl`) — placement, GC, WAF;
//! * the NAND timing oracle (`slimio-nand`) — per-die/channel latency;
//! * a RAM-backed **data plane** so the functional stack (WAL, snapshots,
//!   recovery) moves real bytes and can be crash-tested.
//!
//! The device is synchronous-with-timestamps: callers pass the current
//! virtual time and receive the completion time of each command. Both the
//! io_uring emulation (`slimio-uring`) and the kernel-path model
//! (`slimio-kpath`) sit on top of this interface, so baseline and SlimIO
//! stacks exercise *the same device* — exactly the paper's setup, where the
//! only difference is the path and the placement hints.
//!
//! The logical block size equals the NAND page size (4 KiB), so
//! LBA == LPN throughout.

#![warn(missing_docs)]

pub mod command;
pub mod device;
pub mod fault;

pub use command::{Command, Completion, DeviceError};
pub use device::{DeviceConfig, DeviceTelemetry, NvmeDevice};
pub use fault::{FaultKind, FaultPlan, FaultSpecError};

/// Logical block size in bytes (equal to the NAND page size).
pub const LBA_BYTES: usize = 4096;
