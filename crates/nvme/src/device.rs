//! The emulated controller: FTL + NAND timing + data plane.

use std::collections::HashMap;

use slimio_des::SimTime;
use slimio_ftl::{Ftl, FtlConfig, Lpn, Pid, PlacementMode};
use slimio_nand::{Latencies, NandTimer};

use crate::command::{Completion, DeviceError};
use crate::fault::{FaultAction, FaultPlan, FaultState};
use crate::LBA_BYTES;

/// Device construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// FTL layout and placement mode.
    pub ftl: FtlConfig,
    /// NAND operation latencies.
    pub latencies: Latencies,
    /// Whether to keep page payloads in RAM. The functional stack needs
    /// this; pure timing simulations turn it off to stay allocation-free.
    pub store_data: bool,
    /// Whether Dataset Management (deallocate/TRIM) reaches the FTL.
    /// FEMU's black-box FTL ignores it — invalidation then happens only
    /// by overwrite, which is what ages conventional devices under
    /// generational workloads. Defaults to true (spec-conformant device);
    /// the paper-fidelity experiments turn it off.
    pub honor_deallocate: bool,
}

impl DeviceConfig {
    /// Paper-configured conventional SSD (baseline).
    pub fn conventional(geometry: slimio_nand::Geometry) -> Self {
        DeviceConfig {
            ftl: FtlConfig::conventional(geometry),
            latencies: Latencies::default(),
            store_data: true,
            honor_deallocate: true,
        }
    }

    /// Paper-configured FDP SSD (1 GiB RUs, 8 PIDs).
    pub fn fdp(geometry: slimio_nand::Geometry) -> Self {
        DeviceConfig {
            ftl: FtlConfig::fdp(geometry),
            latencies: Latencies::default(),
            store_data: true,
            honor_deallocate: true,
        }
    }

    /// Tiny device for unit tests.
    pub fn tiny(mode: PlacementMode) -> Self {
        DeviceConfig {
            ftl: FtlConfig::tiny(mode),
            latencies: Latencies::default(),
            store_data: true,
            honor_deallocate: true,
        }
    }

    /// Live-serving device: the paper's FEMU geometry scaled by `ratio`,
    /// with the data plane enabled so real payloads round-trip. FDP mode
    /// shrinks the RU with the device (keeping the 180 GB / 1 GiB ratio)
    /// but never below one block per die, so append points still stripe
    /// across the full die population.
    pub fn live(fdp: bool, ratio: f64) -> Self {
        Self::live_with_pids(fdp, ratio, 8)
    }

    /// [`DeviceConfig::live`] with an explicit PID budget. A sharded
    /// write path dedicates three placement streams to every shard (WAL,
    /// WAL-snapshot, on-demand snapshot) plus the shared metadata stream,
    /// so the device must advertise more than the paper's 8 PIDs once the
    /// shard count grows.
    pub fn live_with_pids(fdp: bool, ratio: f64, max_pids: u8) -> Self {
        let geometry = slimio_nand::Geometry::scaled(ratio);
        let ftl = if fdp {
            let ru_bytes = (((1u64 << 30) as f64 * ratio) as u64)
                .max(geometry.dies() as u64 * geometry.block_bytes())
                .next_power_of_two();
            FtlConfig::fdp_with_ru_pids(geometry, ru_bytes, max_pids)
        } else {
            FtlConfig::conventional(geometry)
        };
        DeviceConfig {
            ftl,
            latencies: Latencies::default(),
            store_data: true,
            honor_deallocate: true,
        }
    }
}

/// The emulated NVMe SSD.
///
/// All methods take the caller's current virtual time and return
/// completion timestamps computed against the internal per-die/per-channel
/// queues — so contention between callers (WAL path vs snapshot path) and
/// GC-induced stalls surface as later `done_at` values, never as blocking.
pub struct NvmeDevice {
    cfg: DeviceConfig,
    ftl: Ftl,
    timer: NandTimer,
    store: Option<HashMap<Lpn, Box<[u8]>>>,
    powered: bool,
    /// Completion time of the latest write, for `Flush` barriers.
    last_write_done: SimTime,
    /// Armed fault schedule; `None` (the default) costs one branch per write.
    fault: Option<FaultState>,
    /// Write commands accepted since construction (fault-armed or not),
    /// so harnesses can enumerate crash points of a recorded workload.
    write_cmds: u64,
    /// Wall-clock nanoseconds spent stalled in injected `slow@` faults.
    /// The live server's telemetry reads the delta around a group commit
    /// to attribute the stall to the device-sync stage.
    stall_ns: u64,
}

/// A consistent snapshot of device/FTL/NAND state for telemetry export.
/// Taken under the device lock so all fields describe the same instant.
#[derive(Clone, Debug, Default)]
pub struct DeviceTelemetry {
    /// Live write amplification factor (NAND pages / host pages).
    pub waf: f64,
    /// Host pages programmed.
    pub host_pages: u64,
    /// Pages relocated by garbage collection.
    pub gc_copied_pages: u64,
    /// GC passes (foreground + background) run so far.
    pub gc_passes: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Pages invalidated via Dataset Management (TRIM).
    pub trimmed_pages: u64,
    /// Read commands served by the FTL.
    pub reads: u64,
    /// Total die-busy time across all dies, in simulated nanoseconds.
    pub die_busy_ns: u64,
    /// Wall-clock nanoseconds spent in injected `slow@` device stalls.
    pub wall_stall_ns: u64,
    /// Advertised capacity in bytes.
    pub capacity_bytes: u64,
    /// Reclaim units on the free list.
    pub free_rus: u64,
    /// Logical pages currently mapped.
    pub live_pages: u64,
    /// Write commands accepted since construction.
    pub write_commands: u64,
    /// Per-placement-ID RU occupancy: `(pid, rus_held, valid_pages)` for
    /// every PID owning at least one non-free RU.
    pub ru_occupancy: Vec<(u8, u64, u64)>,
}

impl NvmeDevice {
    /// Builds a powered-on, empty device.
    pub fn new(cfg: DeviceConfig) -> Self {
        NvmeDevice {
            ftl: Ftl::new(cfg.ftl),
            timer: NandTimer::new(cfg.ftl.geometry, cfg.latencies),
            store: cfg.store_data.then(HashMap::new),
            powered: true,
            last_write_done: SimTime::ZERO,
            fault: None,
            write_cmds: 0,
            stall_ns: 0,
            cfg,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Advertised capacity in logical blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// Advertised capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks() * LBA_BYTES as u64
    }

    /// Current write amplification factor.
    pub fn waf(&self) -> f64 {
        self.ftl.stats().waf_value()
    }

    /// FTL statistics (GC passes, trims, host/GC page counts).
    pub fn ftl_stats(&self) -> &slimio_ftl::FtlStats {
        self.ftl.stats()
    }

    /// Direct access to the FTL (diagnostics and white-box tests).
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// NAND timing state (utilization reporting).
    pub fn timer(&self) -> &NandTimer {
        &self.timer
    }

    fn check_power(&self) -> Result<(), DeviceError> {
        if self.powered {
            Ok(())
        } else {
            Err(DeviceError::PoweredOff)
        }
    }

    /// Cuts power. Subsequent commands fail until [`NvmeDevice::power_on`].
    /// Data already programmed to NAND persists (it is non-volatile); the
    /// I/O-path layers above are responsible for modelling lost in-flight
    /// submissions.
    pub fn power_off(&mut self) {
        self.powered = false;
    }

    /// Restores power.
    pub fn power_on(&mut self) {
        self.powered = true;
    }

    /// Arms a fault plan with a fresh write counter, replacing any armed
    /// plan. Power-cut and torn plans disarm themselves when they fire, so
    /// a post-crash power-on does not re-trigger them.
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan));
    }

    /// Disarms the current fault plan, if any.
    pub fn disarm_fault(&mut self) {
        self.fault = None;
    }

    /// True while a fault plan is armed. Upper layers use this to decide
    /// whether to keep retry bookkeeping, so the unarmed path stays free.
    pub fn fault_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.as_ref().map(|f| f.plan())
    }

    /// Write commands accepted since construction.
    pub fn write_commands(&self) -> u64 {
        self.write_cmds
    }

    /// Wall-clock nanoseconds spent stalled in injected `slow@` faults.
    pub fn wall_stall_ns(&self) -> u64 {
        self.stall_ns
    }

    /// Snapshots device, FTL, and NAND state for telemetry export.
    pub fn telemetry(&self) -> DeviceTelemetry {
        let stats = self.ftl.stats();
        DeviceTelemetry {
            waf: stats.waf_value(),
            host_pages: stats.waf.host_pages(),
            gc_copied_pages: stats.waf.gc_copied_pages(),
            gc_passes: stats.gc_passes,
            erases: stats.waf.erases(),
            trimmed_pages: stats.trimmed_pages,
            reads: stats.reads,
            die_busy_ns: self.timer.total_die_busy().as_nanos(),
            wall_stall_ns: self.stall_ns,
            capacity_bytes: self.capacity_bytes(),
            free_rus: self.ftl.free_rus() as u64,
            live_pages: self.ftl.live_pages(),
            write_commands: self.write_cmds,
            ru_occupancy: self.ftl.pid_occupancy(),
        }
    }

    /// A torn write: program only the first `keep` payload bytes (boundary
    /// page zero-padded), then cut power. The host never sees a completion
    /// — from its side this is a power cut mid-transfer — so no NAND time
    /// is charged and no `Completion` is produced.
    fn torn_write(
        &mut self,
        lba: Lpn,
        blocks: u64,
        pid: Pid,
        data: Option<&[u8]>,
        keep: usize,
    ) -> Result<Completion, DeviceError> {
        let keep = keep.min(blocks as usize * LBA_BYTES);
        let pages = keep.div_ceil(LBA_BYTES) as u64;
        for i in 0..pages {
            let lpn = lba + i;
            self.ftl.write(lpn, pid)?;
            if let (Some(store), Some(d)) = (self.store.as_mut(), data) {
                let start = i as usize * LBA_BYTES;
                let end = ((i as usize + 1) * LBA_BYTES).min(keep);
                let mut page = vec![0u8; LBA_BYTES];
                page[..end - start].copy_from_slice(&d[start..end]);
                store.insert(lpn, page.into_boxed_slice());
            }
        }
        self.powered = false;
        Err(DeviceError::PoweredOff)
    }

    /// Writes `blocks` logical blocks at `lba` with placement hint `pid`.
    ///
    /// `data`, when provided, must be exactly `blocks * 4096` bytes and is
    /// retained in the data plane (if enabled). GC work the FTL performs to
    /// make room is charged to the NAND dies *before* the host programs,
    /// which is how GC stalls propagate into host-visible latency.
    pub fn write(
        &mut self,
        lba: Lpn,
        blocks: u64,
        pid: Pid,
        data: Option<&[u8]>,
        now: SimTime,
    ) -> Result<Completion, DeviceError> {
        self.check_power()?;
        if let Some(d) = data {
            let expected = blocks as usize * LBA_BYTES;
            if d.len() != expected {
                return Err(DeviceError::PayloadSize {
                    expected,
                    got: d.len(),
                });
            }
        }
        self.write_cmds += 1;
        if let Some(fault) = self.fault.as_mut() {
            match fault.on_write() {
                FaultAction::Proceed => {}
                FaultAction::Fail => return Err(DeviceError::Injected),
                FaultAction::PowerCut => {
                    self.fault = None;
                    self.powered = false;
                    return Err(DeviceError::PoweredOff);
                }
                FaultAction::Torn { keep_bytes } => {
                    self.fault = None;
                    return self.torn_write(lba, blocks, pid, data, keep_bytes);
                }
                FaultAction::Slow { per_write_us } => {
                    // Wall-clock stall, not DES cost: only the live server
                    // (overload tests) ever arms slow plans, and stalling
                    // here — with the device lock held — models a device
                    // whose queue the writer thread is stuck behind.
                    std::thread::sleep(std::time::Duration::from_micros(per_write_us));
                    self.stall_ns += per_write_us * 1_000;
                }
            }
        }
        let mut done = now;
        let mut gc_copied = 0u64;
        let mut gc_erases = 0u64;
        for i in 0..blocks {
            let lpn = lba + i;
            let res = self.ftl.write(lpn, pid)?;
            // Charge GC first: relocations and erases occupy dies, delaying
            // the host program that queued behind them. Victim RUs stripe
            // their blocks across dies, so each die in the stripe absorbs
            // (roughly) one erase per reclaimed RU.
            for pass in &res.gc {
                for copy in &pass.copies {
                    self.timer.copy_page(copy.dst.die, now);
                    gc_copied += 1;
                }
                gc_erases += pass.erased_blocks as u64;
                for b in 0..pass.erased_blocks.min(self.cfg.ftl.geometry.dies()) {
                    let die = b % self.cfg.ftl.geometry.dies();
                    self.timer.erase_block(die, now);
                }
            }
            let t = self.timer.program_page(res.dst.die, now);
            done = done.max(t);
            if let (Some(store), Some(d)) = (self.store.as_mut(), data) {
                let src = &d[i as usize * LBA_BYTES..(i as usize + 1) * LBA_BYTES];
                store.insert(lpn, src.into());
            }
        }
        self.last_write_done = self.last_write_done.max(done);
        Ok(Completion {
            done_at: done,
            gc_copied,
            gc_erases,
        })
    }

    /// Reads `blocks` logical blocks at `lba`. Returns the completion and,
    /// when the data plane is enabled, the payload (unwritten blocks read
    /// as zeroes, matching NVMe deallocated-block behaviour).
    pub fn read(
        &mut self,
        lba: Lpn,
        blocks: u64,
        now: SimTime,
    ) -> Result<(Completion, Option<Vec<u8>>), DeviceError> {
        self.check_power()?;
        let mut done = now;
        let mut out = self
            .store
            .is_some()
            .then(|| vec![0u8; blocks as usize * LBA_BYTES]);
        for i in 0..blocks {
            let lpn = lba + i;
            if let Some(ptr) = self.ftl.read(lpn)? {
                let t = self.timer.read_page(ptr.die, now);
                done = done.max(t);
            }
            if let (Some(buf), Some(store)) = (out.as_mut(), self.store.as_ref()) {
                if let Some(page) = store.get(&lpn) {
                    buf[i as usize * LBA_BYTES..(i as usize + 1) * LBA_BYTES].copy_from_slice(page);
                }
            }
        }
        Ok((
            Completion {
                done_at: done,
                gc_copied: 0,
                gc_erases: 0,
            },
            out,
        ))
    }

    /// Deallocates (trims) a block range. Pure mapping work — no NAND
    /// time. When the device does not honor Dataset Management (FEMU's
    /// FTL), the command completes successfully but invalidates nothing.
    pub fn deallocate(
        &mut self,
        lba: Lpn,
        blocks: u64,
        now: SimTime,
    ) -> Result<Completion, DeviceError> {
        self.check_power()?;
        if !self.cfg.honor_deallocate {
            return Ok(Completion {
                done_at: now,
                gc_copied: 0,
                gc_erases: 0,
            });
        }
        self.ftl.trim_range(lba, blocks)?;
        if let Some(store) = self.store.as_mut() {
            for lpn in lba..lba + blocks {
                store.remove(&lpn);
            }
        }
        Ok(Completion {
            done_at: now,
            gc_copied: 0,
            gc_erases: 0,
        })
    }

    /// Flush barrier: completes when every previously accepted write has
    /// reached the NAND array.
    pub fn flush(&mut self, now: SimTime) -> Result<Completion, DeviceError> {
        self.check_power()?;
        Ok(Completion {
            done_at: now.max(self.last_write_done),
            gc_copied: 0,
            gc_erases: 0,
        })
    }

    /// Runs one background GC pass if the device is under-provisioned on
    /// free RUs, charging NAND time at `now`. Returns pages copied.
    pub fn background_gc(&mut self, now: SimTime) -> Result<u64, DeviceError> {
        self.check_power()?;
        match self.ftl.background_gc()? {
            None => Ok(0),
            Some(pass) => {
                for copy in &pass.copies {
                    self.timer.copy_page(copy.dst.die, now);
                }
                for b in 0..pass.erased_blocks.min(self.cfg.ftl.geometry.dies()) {
                    let die = b % self.cfg.ftl.geometry.dies();
                    self.timer.erase_block(die, now);
                }
                Ok(pass.copies.len() as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NvmeDevice {
        NvmeDevice::new(DeviceConfig::tiny(PlacementMode::Conventional))
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; LBA_BYTES]
    }

    #[test]
    fn write_read_roundtrip_data() {
        let mut dev = tiny();
        let data = page(0xAB);
        dev.write(10, 1, 0, Some(&data), SimTime::ZERO).unwrap();
        let (_, out) = dev.read(10, 1, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), data);
    }

    #[test]
    fn unwritten_blocks_read_zeroes() {
        let mut dev = tiny();
        let (c, out) = dev.read(5, 2, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), vec![0u8; 2 * LBA_BYTES]);
        // No NAND access for unmapped blocks.
        assert_eq!(c.done_at, SimTime::ZERO);
    }

    #[test]
    fn multi_block_write_stripes_dies() {
        let mut dev = tiny();
        let data = vec![7u8; 8 * LBA_BYTES];
        let c = dev.write(0, 8, 0, Some(&data), SimTime::ZERO).unwrap();
        // 8 pages across 4 dies (2 per die): ~2 programs serialized per
        // die, well under 8 serialized programs.
        let serial = SimTime::from_micros(8 * 204);
        assert!(c.done_at < serial, "{:?}", c.done_at);
        let (_, out) = dev.read(0, 8, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), data);
    }

    #[test]
    fn payload_size_mismatch_rejected() {
        let mut dev = tiny();
        let err = dev
            .write(0, 2, 0, Some(&page(1)), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, DeviceError::PayloadSize { .. }));
    }

    #[test]
    fn flush_waits_for_writes() {
        let mut dev = tiny();
        let c = dev.write(0, 1, 0, Some(&page(1)), SimTime::ZERO).unwrap();
        let f = dev.flush(SimTime::ZERO).unwrap();
        assert_eq!(f.done_at, c.done_at);
        // A flush after everything completed is instantaneous.
        let f2 = dev.flush(c.done_at + SimTime::from_secs(1)).unwrap();
        assert_eq!(f2.done_at, c.done_at + SimTime::from_secs(1));
    }

    #[test]
    fn deallocate_clears_data_and_mapping() {
        let mut dev = tiny();
        dev.write(3, 1, 0, Some(&page(9)), SimTime::ZERO).unwrap();
        dev.deallocate(3, 1, SimTime::ZERO).unwrap();
        let (_, out) = dev.read(3, 1, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), page(0));
        assert_eq!(dev.ftl().live_pages(), 0);
    }

    #[test]
    fn power_off_rejects_commands_but_keeps_data() {
        let mut dev = tiny();
        dev.write(0, 1, 0, Some(&page(5)), SimTime::ZERO).unwrap();
        dev.power_off();
        assert!(matches!(
            dev.write(1, 1, 0, Some(&page(6)), SimTime::ZERO),
            Err(DeviceError::PoweredOff)
        ));
        assert!(matches!(
            dev.read(0, 1, SimTime::ZERO),
            Err(DeviceError::PoweredOff)
        ));
        dev.power_on();
        let (_, out) = dev.read(0, 1, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), page(5));
    }

    #[test]
    fn power_cut_plan_drops_triggering_write_and_powers_off() {
        let mut dev = tiny();
        dev.arm_fault("pc@2".parse().unwrap());
        dev.write(0, 1, 0, Some(&page(1)), SimTime::ZERO).unwrap();
        assert!(matches!(
            dev.write(1, 1, 0, Some(&page(2)), SimTime::ZERO),
            Err(DeviceError::PoweredOff)
        ));
        // The plan consumed itself: power-on does not re-trigger it.
        assert!(!dev.fault_armed());
        dev.power_on();
        let (_, out) = dev.read(0, 2, SimTime::ZERO).unwrap();
        let mut expect = page(1);
        expect.extend_from_slice(&page(0)); // write 2 never persisted
        assert_eq!(out.unwrap(), expect);
    }

    #[test]
    fn torn_plan_persists_prefix_only() {
        let mut dev = tiny();
        // Keep one full page plus 100 bytes of a 3-page write.
        dev.arm_fault(format!("torn@1:{}", LBA_BYTES + 100).parse().unwrap());
        let data: Vec<u8> = (0..3 * LBA_BYTES).map(|i| (i % 251) as u8 + 1).collect();
        assert!(matches!(
            dev.write(0, 3, 0, Some(&data), SimTime::ZERO),
            Err(DeviceError::PoweredOff)
        ));
        dev.power_on();
        let (_, out) = dev.read(0, 3, SimTime::ZERO).unwrap();
        let out = out.unwrap();
        assert_eq!(&out[..LBA_BYTES + 100], &data[..LBA_BYTES + 100]);
        assert!(out[LBA_BYTES + 100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn transient_plan_fails_window_then_recovers() {
        let mut dev = tiny();
        dev.arm_fault("fail@2x2".parse().unwrap());
        dev.write(0, 1, 0, Some(&page(1)), SimTime::ZERO).unwrap();
        for _ in 0..2 {
            assert!(matches!(
                dev.write(1, 1, 0, Some(&page(2)), SimTime::ZERO),
                Err(DeviceError::Injected)
            ));
        }
        // Third retry lands past the window; nothing from the failed
        // attempts persisted in the meantime.
        dev.write(1, 1, 0, Some(&page(2)), SimTime::ZERO).unwrap();
        let (_, out) = dev.read(1, 1, SimTime::ZERO).unwrap();
        assert_eq!(out.unwrap(), page(2));
        assert_eq!(dev.write_commands(), 4);
    }

    #[test]
    fn overwrites_turn_into_gc_eventually() {
        let mut dev = tiny();
        let cap = dev.capacity_blocks();
        let data = page(1);
        let mut saw_gc = false;
        for round in 0..3u64 {
            for lba in 0..cap {
                let c = dev.write(lba, 1, 0, Some(&data), SimTime::ZERO).unwrap();
                saw_gc |= c.gc_erases > 0;
                let _ = round;
            }
        }
        assert!(saw_gc, "three full overwrites must trigger GC");
        assert!(dev.waf() >= 1.0);
    }

    #[test]
    fn gc_stall_delays_host_write() {
        // Compare a write that triggers GC against one that doesn't: the
        // GC-triggering completion must be later (die occupied by erase).
        let mut dev = tiny();
        let cap = dev.capacity_blocks();
        let data = page(2);
        let mut clean_latency = SimTime::ZERO;
        let mut gc_latency = SimTime::ZERO;
        for round in 0..4u64 {
            for lba in 0..cap {
                let c = dev.write(lba, 1, 0, Some(&data), SimTime::ZERO).unwrap();
                if c.gc_erases == 0 && clean_latency == SimTime::ZERO {
                    clean_latency = c.done_at;
                }
                if c.gc_erases > 0 {
                    gc_latency = gc_latency.max(c.done_at);
                }
                let _ = round;
            }
        }
        assert!(
            gc_latency > clean_latency,
            "{gc_latency} <= {clean_latency}"
        );
    }

    #[test]
    fn live_presets_validate_and_store_data() {
        for fdp in [false, true] {
            for ratio in [0.02, 0.05] {
                let cfg = DeviceConfig::live(fdp, ratio);
                assert!(cfg.ftl.validate().is_ok(), "{:?}", cfg.ftl.validate());
                assert!(cfg.store_data && cfg.honor_deallocate);
                let mut dev = NvmeDevice::new(cfg);
                assert!(dev.capacity_blocks() > 0);
                let data = page(0x5A);
                dev.write(0, 1, 0, Some(&data), SimTime::ZERO).unwrap();
                let (_, out) = dev.read(0, 1, SimTime::ZERO).unwrap();
                assert_eq!(out.unwrap(), data);
            }
        }
    }

    #[test]
    fn fdp_device_accepts_pids_and_keeps_waf_one() {
        let mut dev = NvmeDevice::new(DeviceConfig::tiny(PlacementMode::Fdp { max_pids: 4 }));
        let cap = dev.capacity_blocks();
        let wal = cap / 2;
        let data = page(3);
        for _ in 0..4 {
            for lba in 0..wal {
                dev.write(lba, 1, 1, Some(&data), SimTime::ZERO).unwrap();
            }
            dev.deallocate(0, wal, SimTime::ZERO).unwrap();
        }
        assert!((dev.waf() - 1.0).abs() < 1e-12, "WAF {}", dev.waf());
    }
}
