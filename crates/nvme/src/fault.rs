//! Deterministic fault injection for the emulated device.
//!
//! A [`FaultPlan`] is a serializable schedule armed on an
//! [`NvmeDevice`](crate::NvmeDevice). The device counts *write commands*
//! (one per `write` call, retries included, so retried commands consume
//! plan budget exactly like real resubmissions) and fires the configured
//! fault when the count reaches the plan's trigger point:
//!
//! * **power cut** (`pc@N`) — the Nth write persists nothing and the
//!   device powers off; every later command fails with
//!   [`DeviceError::PoweredOff`](crate::DeviceError::PoweredOff) until
//!   the next power-on (= process restart in live mode).
//! * **torn write** (`torn@N:B`) — the first `B` bytes of the Nth write's
//!   payload persist (the boundary page zero-padded past the prefix), the
//!   rest are lost, and the device powers off: a power loss mid-DMA.
//! * **transient failures** (`fail@N` / `fail@NxK`) — writes N through
//!   N+K-1 fail with [`DeviceError::Injected`](crate::DeviceError::Injected)
//!   and persist nothing; the device stays up. Models a correctable
//!   controller hiccup the host is expected to retry through.
//! * **slow device** (`slow@N:US`) — from the Nth write on, every write
//!   command stalls the caller for `US` wall-clock microseconds before
//!   executing normally. Nothing is lost and the device stays up: this is
//!   the overload hook live-mode backpressure tests use to model a device
//!   whose program latency has collapsed (thermal throttle, GC storm)
//!   without touching the DES cost model. Never self-disarms.
//!
//! Determinism comes from the schedule itself: a crash matrix enumerates
//! `N` over the write positions of a deterministic workload, so every
//! crash state is reproducible from the `(workload, spec)` pair alone.

use std::fmt;
use std::str::FromStr;

/// What a [`FaultPlan`] injects once its trigger point is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Power cut: the triggering write persists nothing, device goes down.
    PowerCut,
    /// Torn write: only the first `keep_bytes` of the triggering write's
    /// payload persist, then the device goes down.
    Torn {
        /// Payload prefix length, in bytes, that reaches media.
        keep_bytes: usize,
    },
    /// The next `count` writes fail transiently; the device stays up.
    Transient {
        /// Number of consecutive write commands that fail.
        count: u64,
    },
    /// Every write from the trigger point on stalls the calling thread
    /// for `per_write_us` wall-clock microseconds, then proceeds
    /// normally. Models a slowed device for live-mode overload tests.
    Slow {
        /// Wall-clock stall per write command, in microseconds.
        per_write_us: u64,
    },
}

/// A deterministic fault schedule: fire `kind` at the `at_write`-th write
/// command (1-based). Round-trips through its spec string (`pc@N`,
/// `torn@N:B`, `fail@N`, `fail@NxK`, `slow@N:US`) via [`FromStr`] and
/// [`fmt::Display`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based index of the write command the fault first applies to.
    pub at_write: u64,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A fault-plan spec string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (expected pc@N, torn@N:B, fail@N[xK], or slow@N:US, N >= 1)",
            self.0
        )
    }
}

impl std::error::Error for FaultSpecError {}

impl FromStr for FaultPlan {
    type Err = FaultSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || FaultSpecError(format!("bad fault spec {s:?}"));
        let (kind, rest) = s.split_once('@').ok_or_else(bad)?;
        let parse_at = |t: &str| -> Result<u64, FaultSpecError> {
            match t.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(bad()),
            }
        };
        let plan = match kind {
            "pc" => FaultPlan {
                at_write: parse_at(rest)?,
                kind: FaultKind::PowerCut,
            },
            "torn" => {
                let (at, keep) = rest.split_once(':').ok_or_else(bad)?;
                FaultPlan {
                    at_write: parse_at(at)?,
                    kind: FaultKind::Torn {
                        keep_bytes: keep.parse().map_err(|_| bad())?,
                    },
                }
            }
            "fail" => {
                let (at, count) = match rest.split_once('x') {
                    Some((at, k)) => {
                        let k = k.parse::<u64>().map_err(|_| bad())?;
                        if k < 1 {
                            return Err(bad());
                        }
                        (at, k)
                    }
                    None => (rest, 1),
                };
                FaultPlan {
                    at_write: parse_at(at)?,
                    kind: FaultKind::Transient { count },
                }
            }
            "slow" => {
                let (at, us) = rest.split_once(':').ok_or_else(bad)?;
                FaultPlan {
                    at_write: parse_at(at)?,
                    kind: FaultKind::Slow {
                        per_write_us: us.parse().map_err(|_| bad())?,
                    },
                }
            }
            _ => return Err(bad()),
        };
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::PowerCut => write!(f, "pc@{}", self.at_write),
            FaultKind::Torn { keep_bytes } => write!(f, "torn@{}:{keep_bytes}", self.at_write),
            FaultKind::Transient { count: 1 } => write!(f, "fail@{}", self.at_write),
            FaultKind::Transient { count } => write!(f, "fail@{}x{count}", self.at_write),
            FaultKind::Slow { per_write_us } => write!(f, "slow@{}:{per_write_us}", self.at_write),
        }
    }
}

/// What the device must do with the current write command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault at this point: execute normally.
    Proceed,
    /// Cut power before anything persists.
    PowerCut,
    /// Persist only the payload prefix, then cut power.
    Torn {
        /// Payload prefix length in bytes.
        keep_bytes: usize,
    },
    /// Fail the command transiently; nothing persists, device stays up.
    Fail,
    /// Stall the caller for the given wall-clock microseconds, then
    /// execute the write normally.
    Slow {
        /// Stall duration in microseconds.
        per_write_us: u64,
    },
}

/// An armed plan plus its progress counter.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    seen: u64,
}

impl FaultState {
    /// Arms `plan` with a fresh write counter.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState { plan, seen: 0 }
    }

    /// The armed plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Write commands observed since the plan was armed.
    pub fn writes_seen(&self) -> u64 {
        self.seen
    }

    /// Accounts one write command and says what to do with it.
    pub fn on_write(&mut self) -> FaultAction {
        self.seen += 1;
        let at = self.plan.at_write;
        match self.plan.kind {
            FaultKind::PowerCut if self.seen == at => FaultAction::PowerCut,
            FaultKind::Torn { keep_bytes } if self.seen == at => FaultAction::Torn { keep_bytes },
            FaultKind::Transient { count } if self.seen >= at && self.seen - at < count => {
                FaultAction::Fail
            }
            FaultKind::Slow { per_write_us } if self.seen >= at => {
                FaultAction::Slow { per_write_us }
            }
            _ => FaultAction::Proceed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for spec in [
            "pc@1",
            "pc@120",
            "torn@7:1000",
            "fail@3",
            "fail@5x8",
            "slow@1:500",
            "slow@64:10000",
        ] {
            let plan: FaultPlan = spec.parse().unwrap();
            assert_eq!(plan.to_string(), spec);
        }
    }

    #[test]
    fn bad_specs_rejected() {
        for spec in [
            "",
            "pc",
            "pc@",
            "pc@0",
            "pc@x",
            "torn@5",
            "torn@0:9",
            "torn@5:",
            "fail@0",
            "fail@2x0",
            "fail@2x",
            "nuke@3",
            "pc@-1",
            "slow@3",
            "slow@0:10",
            "slow@3:",
        ] {
            assert!(spec.parse::<FaultPlan>().is_err(), "{spec:?} parsed");
        }
    }

    #[test]
    fn power_cut_fires_once_at_its_index() {
        let mut st = FaultState::new("pc@3".parse().unwrap());
        assert_eq!(st.on_write(), FaultAction::Proceed);
        assert_eq!(st.on_write(), FaultAction::Proceed);
        assert_eq!(st.on_write(), FaultAction::PowerCut);
        assert_eq!(st.on_write(), FaultAction::Proceed);
        assert_eq!(st.writes_seen(), 4);
    }

    #[test]
    fn transient_window_covers_count_writes() {
        let mut st = FaultState::new("fail@2x2".parse().unwrap());
        assert_eq!(st.on_write(), FaultAction::Proceed);
        assert_eq!(st.on_write(), FaultAction::Fail);
        assert_eq!(st.on_write(), FaultAction::Fail);
        assert_eq!(st.on_write(), FaultAction::Proceed);
    }

    #[test]
    fn torn_reports_prefix() {
        let mut st = FaultState::new("torn@1:4097".parse().unwrap());
        assert_eq!(st.on_write(), FaultAction::Torn { keep_bytes: 4097 });
    }

    #[test]
    fn slow_applies_from_trigger_onward_and_never_disarms() {
        let mut st = FaultState::new("slow@2:750".parse().unwrap());
        assert_eq!(st.on_write(), FaultAction::Proceed);
        for _ in 0..8 {
            assert_eq!(st.on_write(), FaultAction::Slow { per_write_us: 750 });
        }
    }
}
