//! Zipfian key-popularity distribution (YCSB's generator).
//!
//! Implements the Gray et al. "quick zipf" algorithm used by YCSB's
//! `ZipfianGenerator`: constants `alpha`, `zeta(n)`, `eta` are
//! precomputed, then each draw costs one uniform sample and a `powf`.
//! The default exponent is YCSB's 0.99.

use slimio_des::Xoshiro256;

/// Zipfian generator over `[0, n)`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `n` items with YCSB's default skew 0.99.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99)
    }

    /// Creates a generator with a custom exponent `theta` in (0, 1).
    pub fn with_theta(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty key space");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n (the
        // YCSB loader computes this incrementally — the approximation is
        // accurate to <0.1% for n ≥ 10^5 and keeps construction O(1)).
        if n <= 100_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let base: f64 = (1..=100_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫ x^-θ dx from 100000 to n.
            let a = 1.0 - theta;
            base + ((n as f64).powf(a) - 100_000f64.powf(a)) / a
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws a *scattered* key: YCSB hashes the rank so popular keys are
    /// spread over the key space instead of clustered at low ids.
    pub fn sample_scrambled(&self, rng: &mut Xoshiro256) -> u64 {
        let rank = self.sample(rng);
        fnv1a(rank) % self.n
    }

    /// Precomputed ζ(2, θ) (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// FNV-1a 64-bit hash, the scrambler YCSB uses.
fn fnv1a(x: u64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = Xoshiro256::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
            assert!(z.sample_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = Zipfian::new(10_000);
        let mut rng = Xoshiro256::new(7);
        let n = 100_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // With θ=0.99 over 10k items, the top 10 ranks get roughly
        // zeta(10)/zeta(10000) ≈ 30% of draws.
        let frac = top10 as f64 / n as f64;
        assert!((0.2..0.45).contains(&frac), "top-10 share {frac}");
    }

    #[test]
    fn theta_zero_is_uniformish() {
        let z = Zipfian::with_theta(1000, 0.0);
        let mut rng = Xoshiro256::new(3);
        let n = 200_000;
        let low = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        let frac = low as f64 / n as f64;
        assert!((0.07..0.13).contains(&frac), "uniform share {frac}");
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        let z = Zipfian::new(100_000);
        let mut rng = Xoshiro256::new(9);
        // The most common *scrambled* key should not be key 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.sample_scrambled(&mut rng)).or_insert(0u32) += 1;
        }
        let (hot, _) = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_ne!(*hot, 0, "scrambler should move the hot key away from 0");
    }

    #[test]
    fn large_n_constructs_quickly_and_samples() {
        // The paper's YCSB config uses 9M records.
        let z = Zipfian::new(9_000_000);
        let mut rng = Xoshiro256::new(11);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 9_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_items_rejected() {
        Zipfian::new(0);
    }
}
