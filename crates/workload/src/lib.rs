//! Workload generators for the SlimIO evaluation.
//!
//! Two workloads drive every experiment in the paper (§5.1):
//!
//! * [`RedisBench`] — the official redis-benchmark configuration: 50
//!   concurrent clients, 8-byte keys drawn uniformly from a 5.3 M key
//!   range, 4096-byte values, 28 M SET operations (write-only, large
//!   values — the "large-data, write-intensive" scenario).
//! * [`YcsbA`] — YCSB workload A: 8 client threads, 8-byte keys, 2048-byte
//!   values, 9 M records, 115 M operations at a 0.5 : 0.5 GET:SET ratio
//!   with the standard Zipfian request distribution (the "small-data,
//!   less write-intensive" scenario).
//!
//! Both implement [`WorkloadGen`] and support uniform scaling via
//! [`Scale`], so experiments can run the paper's exact parameters under
//! the discrete-event clock or a proportionally smaller configuration for
//! quick runs — ratios (key-range : ops : value-size) are preserved.

#![warn(missing_docs)]

pub mod ops;
pub mod redis_bench;
pub mod ycsb;
pub mod zipf;

pub use ops::{Op, OpKind, WorkloadGen};
pub use redis_bench::RedisBench;
pub use ycsb::YcsbA;
pub use zipf::Zipfian;

/// Uniform workload scaling.
///
/// `Scale::full()` is the paper's configuration; `Scale::ratio(0.01)`
/// shrinks key range and op count by 100× while keeping value sizes and
/// mix identical, so shapes (who wins, by what factor) are preserved.
#[derive(Clone, Copy, Debug)]
pub struct Scale(pub f64);

impl Scale {
    /// The paper's full-size configuration.
    pub fn full() -> Self {
        Scale(1.0)
    }

    /// A proportional fraction of the full configuration.
    pub fn ratio(r: f64) -> Self {
        assert!(r > 0.0 && r <= 1.0, "scale must be in (0, 1], got {r}");
        Scale(r)
    }

    /// Scales a count, keeping at least 1.
    pub fn count(&self, full: u64) -> u64 {
        ((full as f64 * self.0) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_preserves_minimum() {
        assert_eq!(Scale::ratio(0.000001).count(10), 1);
        assert_eq!(Scale::full().count(28_000_000), 28_000_000);
        assert_eq!(Scale::ratio(0.01).count(28_000_000), 280_000);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        Scale::ratio(0.0);
    }
}
