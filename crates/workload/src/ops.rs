//! Operation stream abstraction.

/// What a client asks the database to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Read a key.
    Get,
    /// Write a key with a value of `Op::value_len` bytes.
    Set,
}

/// One generated operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Operation type.
    pub kind: OpKind,
    /// Numeric key; encode with [`key_bytes`] when raw bytes are needed.
    pub key: u64,
    /// Value payload length (0 for GETs).
    pub value_len: u32,
}

/// A deterministic stream of operations plus its nominal run length.
pub trait WorkloadGen {
    /// Produces the next operation.
    fn next_op(&mut self) -> Op;

    /// Total operations a full run should execute.
    fn total_ops(&self) -> u64;

    /// Number of distinct keys the workload draws from.
    fn key_space(&self) -> u64;

    /// Value size used for SETs (bytes).
    fn value_len(&self) -> u32;

    /// Number of concurrent closed-loop clients the paper configures.
    fn clients(&self) -> u32;

    /// Records to preload before the measured phase (0 = none).
    fn preload_records(&self) -> u64 {
        0
    }
}

impl<W: WorkloadGen + ?Sized> WorkloadGen for Box<W> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }
    fn total_ops(&self) -> u64 {
        (**self).total_ops()
    }
    fn key_space(&self) -> u64 {
        (**self).key_space()
    }
    fn value_len(&self) -> u32 {
        (**self).value_len()
    }
    fn clients(&self) -> u32 {
        (**self).clients()
    }
    fn preload_records(&self) -> u64 {
        (**self).preload_records()
    }
}

/// Encodes a numeric key as fixed-width bytes (the paper uses 8-byte
/// keys; redis-benchmark zero-pads a decimal counter, we use the numeric
/// big-endian form which has identical length and distribution).
pub fn key_bytes(key: u64) -> [u8; 8] {
    key.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bytes_are_fixed_width_and_ordered() {
        assert_eq!(key_bytes(0).len(), 8);
        assert!(key_bytes(1) < key_bytes(2));
        assert!(key_bytes(255) < key_bytes(256));
    }
}
