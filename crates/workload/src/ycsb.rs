//! The YCSB-A workload (§5.1).

use slimio_des::Xoshiro256;

use crate::ops::{Op, OpKind, WorkloadGen};
use crate::zipf::Zipfian;
use crate::Scale;

/// Paper configuration: 8 threads, 9 M records, 8 B keys, 2048 B values,
/// 115 M operations, 0.5 : 0.5 GET : SET, Zipfian request distribution.
#[derive(Clone, Debug)]
pub struct YcsbA {
    rng: Xoshiro256,
    zipf: Zipfian,
    records: u64,
    value_len: u32,
    total_ops: u64,
    clients: u32,
}

impl YcsbA {
    /// Full-size paper record count.
    pub const FULL_RECORDS: u64 = 9_000_000;
    /// Full-size paper operation count.
    pub const FULL_OPS: u64 = 115_000_000;

    /// Creates the workload at the given scale with a deterministic seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let records = scale.count(Self::FULL_RECORDS);
        YcsbA {
            rng: Xoshiro256::new(seed),
            zipf: Zipfian::new(records),
            records,
            value_len: 2048,
            total_ops: scale.count(Self::FULL_OPS),
            clients: 8,
        }
    }
}

impl WorkloadGen for YcsbA {
    fn next_op(&mut self) -> Op {
        let key = self.zipf.sample_scrambled(&mut self.rng);
        let kind = if self.rng.gen_bool(0.5) {
            OpKind::Get
        } else {
            OpKind::Set
        };
        Op {
            kind,
            key,
            value_len: if kind == OpKind::Set {
                self.value_len
            } else {
                0
            },
        }
    }

    fn total_ops(&self) -> u64 {
        self.total_ops
    }

    fn key_space(&self) -> u64 {
        self.records
    }

    fn value_len(&self) -> u32 {
        self.value_len
    }

    fn clients(&self) -> u32 {
        self.clients
    }

    fn preload_records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let w = YcsbA::new(Scale::full(), 1);
        assert_eq!(w.key_space(), 9_000_000);
        assert_eq!(w.total_ops(), 115_000_000);
        assert_eq!(w.value_len(), 2048);
        assert_eq!(w.clients(), 8);
        assert_eq!(w.preload_records(), 9_000_000);
        // Dataset ≈ 9M × 2KB ≈ 18.4 GB.
        let dataset = w.key_space() * w.value_len() as u64;
        assert!((17_000_000_000..20_000_000_000).contains(&dataset));
    }

    #[test]
    fn mix_is_roughly_half_and_half() {
        let mut w = YcsbA::new(Scale::ratio(0.001), 3);
        let n = 100_000;
        let sets = (0..n).filter(|_| w.next_op().kind == OpKind::Set).count();
        let frac = sets as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "SET share {frac}");
    }

    #[test]
    fn gets_have_no_payload() {
        let mut w = YcsbA::new(Scale::ratio(0.001), 4);
        for _ in 0..1000 {
            let op = w.next_op();
            match op.kind {
                OpKind::Get => assert_eq!(op.value_len, 0),
                OpKind::Set => assert_eq!(op.value_len, 2048),
            }
            assert!(op.key < w.key_space());
        }
    }

    #[test]
    fn request_distribution_is_skewed() {
        let mut w = YcsbA::new(Scale::ratio(0.01), 5); // 90k records
        let mut counts = std::collections::HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(w.next_op().key).or_insert(0u32) += 1;
        }
        // Zipfian: a small minority of keys should absorb a large share.
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u32 = freqs.iter().take(100).sum();
        let share = top100 as f64 / n as f64;
        assert!(share > 0.15, "top-100 share {share}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = YcsbA::new(Scale::ratio(0.01), 42);
        let mut b = YcsbA::new(Scale::ratio(0.01), 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
