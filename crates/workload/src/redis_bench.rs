//! The redis-benchmark workload (§5.1).

use slimio_des::Xoshiro256;

use crate::ops::{Op, OpKind, WorkloadGen};
use crate::Scale;

/// Paper configuration: 50 clients, 5.3 M key range, 8 B keys, 4096 B
/// values, 28 M SETs per repetition, keys uniform random.
#[derive(Clone, Debug)]
pub struct RedisBench {
    rng: Xoshiro256,
    key_range: u64,
    value_len: u32,
    total_ops: u64,
    clients: u32,
}

impl RedisBench {
    /// Full-size paper key range.
    pub const FULL_KEY_RANGE: u64 = 5_300_000;
    /// Full-size paper operation count (one repetition).
    pub const FULL_OPS: u64 = 28_000_000;

    /// Creates the workload at the given scale with a deterministic seed.
    pub fn new(scale: Scale, seed: u64) -> Self {
        RedisBench {
            rng: Xoshiro256::new(seed),
            key_range: scale.count(Self::FULL_KEY_RANGE),
            value_len: 4096,
            total_ops: scale.count(Self::FULL_OPS),
            clients: 50,
        }
    }
}

impl WorkloadGen for RedisBench {
    fn next_op(&mut self) -> Op {
        Op {
            kind: OpKind::Set,
            key: self.rng.gen_range(self.key_range),
            value_len: self.value_len,
        }
    }

    fn total_ops(&self) -> u64 {
        self.total_ops
    }

    fn key_space(&self) -> u64 {
        self.key_range
    }

    fn value_len(&self) -> u32 {
        self.value_len
    }

    fn clients(&self) -> u32 {
        self.clients
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper() {
        let w = RedisBench::new(Scale::full(), 1);
        assert_eq!(w.key_space(), 5_300_000);
        assert_eq!(w.total_ops(), 28_000_000);
        assert_eq!(w.value_len(), 4096);
        assert_eq!(w.clients(), 50);
        // Dataset ≈ 5.3M × 4KB ≈ 21.7 GB — the paper's ~20 GB snapshots.
        let dataset = w.key_space() * w.value_len() as u64;
        assert!((20_000_000_000..24_000_000_000).contains(&dataset));
    }

    #[test]
    fn all_ops_are_sets_in_range() {
        let mut w = RedisBench::new(Scale::ratio(0.001), 2);
        for _ in 0..10_000 {
            let op = w.next_op();
            assert_eq!(op.kind, OpKind::Set);
            assert!(op.key < w.key_space());
            assert_eq!(op.value_len, 4096);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RedisBench::new(Scale::ratio(0.01), 42);
        let mut b = RedisBench::new(Scale::ratio(0.01), 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = RedisBench::new(Scale::ratio(0.01), 43);
        let same = (0..1000).filter(|_| a.next_op() == c.next_op()).count();
        assert!(same < 10);
    }

    #[test]
    fn keys_cover_the_space_roughly_uniformly() {
        let mut w = RedisBench::new(Scale::ratio(0.0001), 5); // 530 keys
        let mut seen = vec![0u32; w.key_space() as usize];
        for _ in 0..53_000 {
            seen[w.next_op().key as usize] += 1;
        }
        let hit = seen.iter().filter(|&&c| c > 0).count();
        assert!(hit as f64 > seen.len() as f64 * 0.99);
    }
}
