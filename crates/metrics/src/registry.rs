//! Lock-free metrics registry with Prometheus text exposition.
//!
//! The live server instruments its hot paths through this module: a
//! [`Registry`] hands out cheap `Arc` handles — [`Counter`], [`Gauge`],
//! [`AtomicHistogram`] — that record with plain atomic operations and
//! never take a lock. The registry's own mutex guards only series
//! *registration* (get-or-create by name + label set) and rendering;
//! neither happens on a hot path. Rendering emits Prometheus text
//! format 0.0.4, with histograms exposed as cumulative `_bucket{le=…}`
//! series over the same log-linear layout as [`crate::Histogram`]
//! (≤ 1.6 % relative quantization error), `_sum`, and `_count`.
//!
//! Histogram samples are recorded in nanoseconds and rendered in
//! seconds, matching the Prometheus base-unit convention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, BUCKET_COUNT};

/// A monotonically increasing counter.
///
/// [`Counter::set`] exists for *sampled* counters — series whose
/// authoritative (still monotonic) value lives elsewhere and is copied
/// in at scrape time.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (scrape-time mirror of an external
    /// monotonic count).
    #[inline]
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic word).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A lock-free log-linear histogram: the atomic twin of
/// [`crate::Histogram`], sharing its bucket layout so both report the
/// same quantization. Writers from any thread record concurrently with
/// three relaxed atomic adds; readers (the scrape path) see a view
/// that is per-bucket consistent, which is all Prometheus needs.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of recorded values. `u64` of nanoseconds overflows after
    /// ~585 years of accumulated latency — not a live-server concern.
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds by convention).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Histogram::index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot into a plain [`Histogram`] (percentile queries).
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                h.record_n(Histogram::value_of(idx), n);
            }
        }
        h
    }
}

/// The value side of one registered series.
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>, Option<usize>),
    Histogram(Arc<AtomicHistogram>),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(..) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

/// One registered series: a metric name, a label set, and its value.
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: &'static str,
    series: Series,
}

/// A registry of named series. Registration is get-or-create keyed on
/// `(name, labels)`: asking twice for the same series returns the same
/// handle, so samplers can resolve by name at scrape time without
/// bookkeeping.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        matches: F,
        create: G,
    ) -> Arc<T>
    where
        F: Fn(&Series) -> Option<Arc<T>>,
        G: FnOnce() -> (Arc<T>, Series),
    {
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for e in entries.iter() {
            if e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
            {
                if let Some(h) = matches(&e.series) {
                    return h;
                }
                panic!(
                    "metric '{name}' re-registered as a different kind (was {})",
                    e.series.kind()
                );
            }
        }
        let (handle, series) = create();
        entries.push(Entry {
            name: name.to_string(),
            labels: owned_labels(labels),
            help,
            series,
        });
        handle
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            help,
            |s| match s {
                Series::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Series::Counter(c))
            },
        )
    }

    /// Gets or creates a gauge (rendered with shortest-float formatting).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Arc<Gauge> {
        self.gauge_inner(name, labels, help, None)
    }

    /// Gets or creates a gauge rendered with a fixed number of decimal
    /// places (e.g. `decimals = 2` renders 1.0 as `1.00` — the WAF
    /// gauge's contract with CI greps).
    pub fn gauge_with_decimals(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        decimals: usize,
    ) -> Arc<Gauge> {
        self.gauge_inner(name, labels, help, Some(decimals))
    }

    fn gauge_inner(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
        decimals: Option<usize>,
    ) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            help,
            |s| match s {
                Series::Gauge(g, _) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Series::Gauge(g, decimals))
            },
        )
    }

    /// Gets or creates a histogram.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &'static str,
    ) -> Arc<AtomicHistogram> {
        self.get_or_insert(
            name,
            labels,
            help,
            |s| match s {
                Series::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(AtomicHistogram::new());
                (Arc::clone(&h), Series::Histogram(h))
            },
        )
    }

    /// Renders every series in Prometheus text exposition format 0.0.4.
    /// Series are grouped by metric name (one `# HELP`/`# TYPE` pair per
    /// name) and sorted by name then label set, so output is stable
    /// across scrapes.
    pub fn render_prometheus(&self) -> String {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[a]
                .name
                .cmp(&entries[b].name)
                .then_with(|| entries[a].labels.cmp(&entries[b].labels))
        });
        let mut out = String::with_capacity(4096);
        let mut last_name = "";
        for &i in &order {
            let e = &entries[i];
            if e.name != last_name {
                if !e.help.is_empty() {
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                }
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.series.kind()));
                last_name = &e.name;
            }
            match &e.series {
                Series::Counter(c) => {
                    out.push_str(&e.name);
                    render_labels(&e.labels, &[], &mut out);
                    out.push_str(&format!(" {}\n", c.get()));
                }
                Series::Gauge(g, decimals) => {
                    out.push_str(&e.name);
                    render_labels(&e.labels, &[], &mut out);
                    match decimals {
                        Some(d) => out.push_str(&format!(" {:.d$}\n", g.get(), d = d)),
                        None => out.push_str(&format!(" {}\n", fmt_f64(g.get()))),
                    }
                }
                Series::Histogram(h) => render_histogram(e, h, &mut out),
            }
        }
        out
    }
}

/// `{k="v",…}` (with any extra pairs appended), or nothing when empty.
fn render_labels(labels: &[(String, String)], extra: &[(&str, String)], out: &mut String) {
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in extra {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Shortest-float with integer collapsing: whole numbers render without
/// a fractional part (Prometheus parses either form).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Cumulative `_bucket{le=…}` lines over the non-empty buckets (a valid
/// sparse exposition — `le` edges stay sorted and counts cumulative),
/// then `+Inf`, `_sum`, and `_count`. Nanosecond samples render as
/// seconds.
fn render_histogram(e: &Entry, h: &AtomicHistogram, out: &mut String) {
    let mut cumulative = 0u64;
    for (idx, b) in h.buckets.iter().enumerate() {
        let n = b.load(Ordering::Relaxed);
        if n == 0 {
            continue;
        }
        cumulative += n;
        let le = Histogram::value_of(idx) as f64 / 1e9;
        out.push_str(&format!("{}_bucket", e.name));
        render_labels(&e.labels, &[("le", format!("{le}"))], out);
        out.push_str(&format!(" {cumulative}\n"));
    }
    out.push_str(&format!("{}_bucket", e.name));
    render_labels(&e.labels, &[("le", "+Inf".to_string())], out);
    out.push_str(&format!(" {}\n", h.count()));
    out.push_str(&format!("{}_sum", e.name));
    render_labels(&e.labels, &[], out);
    out.push_str(&format!(" {}\n", fmt_f64(h.sum() as f64 / 1e9)));
    out.push_str(&format!("{}_count", e.name));
    render_labels(&e.labels, &[], out);
    out.push_str(&format!(" {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("slimio_ops_total", &[], "ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("slimio_depth", &[("shard", "0")], "depth");
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE slimio_ops_total counter"));
        assert!(text.contains("slimio_ops_total 5"));
        assert!(text.contains("slimio_depth{shard=\"0\"} 3.5"));
    }

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x_total", &[("shard", "1")], "");
        let b = r.counter("x_total", &[("shard", "1")], "");
        a.inc();
        assert_eq!(b.get(), 1);
        // Different label set is a different series.
        let c = r.counter("x_total", &[("shard", "2")], "");
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn fixed_decimal_gauge_renders_trailing_zeros() {
        let r = Registry::new();
        let g = r.gauge_with_decimals("slimio_device_waf", &[], "waf", 2);
        g.set(1.0);
        let text = r.render_prometheus();
        assert!(text.contains("slimio_device_waf 1.00\n"), "{text}");
    }

    #[test]
    fn atomic_histogram_matches_plain_histogram() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [1u64, 64, 1000, 123_456, 9_999_999] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.count(), h.count());
        let snap = ah.snapshot();
        for p in [50.0, 99.0] {
            // Snapshot stores bucket representatives; both sides
            // quantize identically, so percentiles agree exactly.
            assert_eq!(snap.percentile(p), {
                let mut q = Histogram::new();
                for v in [1u64, 64, 1000, 123_456, 9_999_999] {
                    q.record_n(Histogram::value_of(Histogram::index_of(v)), 1);
                }
                q.percentile(p)
            });
        }
    }

    #[test]
    fn histogram_rendering_is_cumulative_and_in_seconds() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", &[("stage", "sync")], "latency");
        h.record(1_000_000_000); // 1s
        h.record(1_000_000_000);
        h.record(2_000_000_000); // 2s
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        // +Inf bucket carries the total count.
        assert!(text.contains("lat_seconds_bucket{stage=\"sync\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{stage=\"sync\"} 3"));
        // Sum is in seconds: 1 + 1 + 2 = 4 (quantized upward ≤ 1.6 %).
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("lat_seconds_sum"))
            .unwrap();
        let v: f64 = sum_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((4.0..4.2).contains(&v), "{v}");
        // Bucket counts are cumulative in le order.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket") && !l.contains("+Inf"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(Registry::new());
        let h = r.histogram("h", &[], "");
        let c = r.counter("c", &[], "");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (h, c) = (Arc::clone(&h), Arc::clone(&c));
                std::thread::spawn(move || {
                    for v in 0..10_000u64 {
                        h.record(v);
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
    }
}
