//! Measurement utilities for the SlimIO reproduction suite.
//!
//! Everything the evaluation harness records flows through this crate:
//!
//! * [`Histogram`] — a log-linear bucketed latency histogram (HDR-style)
//!   with percentile queries (`p50`, `p99`, `p999`).
//! * [`Timeline`] — fixed-interval time series used for the runtime-RPS
//!   figures (Figures 4 and 5 of the paper).
//! * [`WafTracker`] — write-amplification accounting
//!   (`NAND writes / host writes`), the Table 3 WAF column.
//! * [`Table`] — plain-text / markdown table rendering for the per-table
//!   benchmark binaries.
//! * [`summary`] — small statistics helpers (mean, stddev, throughput).
//! * [`registry`] — lock-free named counters/gauges/histograms with
//!   Prometheus text exposition, used by the live server's telemetry.
//!
//! The crate is deliberately free of dependencies so that every other crate
//! in the workspace can use it, including the innermost device models.

#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod summary;
pub mod table;
pub mod timeline;
pub mod waf;

pub use histogram::Histogram;
pub use registry::{AtomicHistogram, Counter, Gauge, Registry};
pub use table::Table;
pub use timeline::Timeline;
pub use waf::WafTracker;
