//! Write amplification accounting.
//!
//! WAF (Write Amplification Factor) is the paper's SSD-lifetime metric
//! (Table 3): the ratio of physical NAND page writes (host writes plus
//! garbage-collection relocations) to host-issued page writes. A perfectly
//! placed workload — which SlimIO achieves with FDP — has WAF = 1.00.

/// Tracks host and device-internal write traffic, in pages.
#[derive(Clone, Debug, Default)]
pub struct WafTracker {
    host_pages: u64,
    gc_copied_pages: u64,
    erases: u64,
}

impl WafTracker {
    /// Creates a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` host-issued page writes.
    pub fn host_write(&mut self, n: u64) {
        self.host_pages += n;
    }

    /// Records `n` pages relocated by garbage collection.
    pub fn gc_copy(&mut self, n: u64) {
        self.gc_copied_pages += n;
    }

    /// Records a block/RU erase.
    pub fn erase(&mut self) {
        self.erases += 1;
    }

    /// Host-issued page writes so far.
    pub fn host_pages(&self) -> u64 {
        self.host_pages
    }

    /// GC-relocated page writes so far.
    pub fn gc_copied_pages(&self) -> u64 {
        self.gc_copied_pages
    }

    /// Number of erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Total NAND page programs (host + GC).
    pub fn nand_pages(&self) -> u64 {
        self.host_pages + self.gc_copied_pages
    }

    /// Current write amplification factor.
    ///
    /// Returns 1.0 for an idle device (no host writes yet), matching the
    /// convention that an unused SSD has ideal amplification.
    pub fn waf(&self) -> f64 {
        if self.host_pages == 0 {
            1.0
        } else {
            self.nand_pages() as f64 / self.host_pages as f64
        }
    }

    /// Merges another tracker's counters into this one.
    pub fn merge(&mut self, other: &WafTracker) {
        self.host_pages += other.host_pages;
        self.gc_copied_pages += other.gc_copied_pages;
        self.erases += other.erases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_device_has_ideal_waf() {
        assert_eq!(WafTracker::new().waf(), 1.0);
    }

    #[test]
    fn no_gc_means_waf_one() {
        let mut w = WafTracker::new();
        w.host_write(1_000_000);
        assert_eq!(w.waf(), 1.0);
    }

    #[test]
    fn gc_copies_raise_waf() {
        let mut w = WafTracker::new();
        w.host_write(100);
        w.gc_copy(14);
        assert!((w.waf() - 1.14).abs() < 1e-12);
    }

    #[test]
    fn waf_never_below_one() {
        let mut w = WafTracker::new();
        w.host_write(7);
        assert!(w.waf() >= 1.0);
        w.gc_copy(3);
        assert!(w.waf() >= 1.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = WafTracker::new();
        a.host_write(10);
        a.gc_copy(2);
        a.erase();
        let mut b = WafTracker::new();
        b.host_write(30);
        b.gc_copy(6);
        a.merge(&b);
        assert_eq!(a.host_pages(), 40);
        assert_eq!(a.gc_copied_pages(), 8);
        assert_eq!(a.erases(), 1);
        assert!((a.waf() - 1.2).abs() < 1e-12);
    }
}
