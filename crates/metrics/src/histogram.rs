//! Log-linear bucketed histogram for latency recording.
//!
//! The design follows the HDR histogram idea: values are grouped into
//! exponential "tiers" (one per power of two above a linear floor), and each
//! tier is divided into a fixed number of linear sub-buckets. With 64
//! sub-buckets per tier the relative quantization error is bounded by
//! 1/64 ≈ 1.6 %, which is far below the run-to-run noise of any latency
//! experiment while keeping the histogram a few KiB.
//!
//! Values are `u64` and unit-agnostic; the evaluation harness records
//! nanoseconds.

/// Number of linear sub-buckets per power-of-two tier.
///
/// Must be a power of two. 64 gives ≤ 1.6 % relative error.
pub(crate) const SUB_BUCKETS: usize = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Values below `SUB_BUCKETS` are stored exactly in the first tier.
pub(crate) const TIERS: usize = (64 - SUB_BITS as usize) + 1;
/// Total bucket count — shared with the registry's atomic histogram so
/// both variants agree on the bucket layout.
pub(crate) const BUCKET_COUNT: usize = TIERS * SUB_BUCKETS;

/// A log-linear latency histogram with bounded relative error.
///
/// ```
/// use slimio_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((490..=515).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; TIERS * SUB_BUCKETS],
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket holding `value`. Shared with the registry's
    /// lock-free [`crate::registry::AtomicHistogram`], which uses the
    /// same log-linear layout over atomic buckets.
    pub(crate) fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // Tier t >= 1 covers [2^(SUB_BITS + t - 1), 2^(SUB_BITS + t)).
        let msb = 63 - value.leading_zeros();
        let tier = (msb - SUB_BITS + 1) as usize;
        let shift = msb - SUB_BITS + 1; // == tier
        let sub = ((value >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        tier * SUB_BUCKETS + sub
    }

    /// Smallest value that maps to bucket `idx` (used as the representative
    /// when reporting percentiles; we report the bucket's upper edge so that
    /// percentile estimates never under-report).
    pub(crate) fn value_of(idx: usize) -> u64 {
        let tier = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if tier == 0 {
            return sub;
        }
        // For tier t >= 1 the sub-bucket index is (value >> t) and already
        // carries the leading bits, so the bucket covers
        // [sub << t, (sub + 1) << t). Report the upper edge, inclusive.
        let shift = tier as u32;
        let edge = ((sub as u128 + 1) << shift) - 1;
        edge.min(u64::MAX as u128) as u64
    }

    /// Records a single value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_of(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a value `n` times.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::index_of(value)] += n;
        self.count += n;
        self.total += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Value at the given percentile in `[0, 100]`.
    ///
    /// Returns the upper edge of the bucket containing the requested rank,
    /// clamped to the observed maximum, so estimates are conservative
    /// (never below the true percentile by more than one bucket width).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the requested element (1-based, ceil) — the standard
        // nearest-rank definition.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(idx).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessor: median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Convenience accessor: 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Convenience accessor: 99.9th percentile — the paper's tail metric.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Removes all recorded values.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("p999", &self.p999())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p999(), 42);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Values below SUB_BUCKETS land in dedicated buckets.
        assert_eq!(h.percentile(100.0), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn index_value_roundtrip_error_bounded() {
        // For any value, the reported bucket edge is within 1/SUB_BUCKETS.
        for shift in 0..63u32 {
            for off in [0u128, 1, 3, 7] {
                let base = 1u128 << shift;
                let v = (base + off * base / 8).min(u64::MAX as u128) as u64;
                let idx = Histogram::index_of(v);
                let rep = Histogram::value_of(idx);
                assert!(rep >= v, "representative {rep} below value {v}");
                let err = (rep - v) as f64 / v.max(1) as f64;
                assert!(
                    err <= 2.0 / SUB_BUCKETS as f64 + 1e-9,
                    "v={v} rep={rep} err={err}"
                );
            }
        }
    }

    #[test]
    fn percentiles_match_naive_on_uniform_data() {
        let mut h = Histogram::new();
        let data: Vec<u64> = (1..=10_000u64).collect();
        for &v in &data {
            h.record(v);
        }
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * data.len() as f64).ceil() as usize;
            let naive = data[rank - 1];
            let est = h.percentile(p);
            let err = (est as f64 - naive as f64).abs() / naive as f64;
            assert!(err < 0.04, "p{p}: naive {naive} est {est}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 1..500u64 {
            a.record(v * 3);
            c.record(v * 3);
        }
        for v in 1..300u64 {
            b.record(v * 7 + 1);
            c.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for p in [10.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(1234, 100);
        for _ in 0..100 {
            b.record(1234);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn clear_resets_state() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(1 << 40);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        h.record(5);
        assert_eq!(h.p50(), 5);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) >= u64::MAX - 1);
    }
}
