//! Fixed-interval time series for runtime metrics.
//!
//! The paper's Figures 4 and 5 plot requests-per-second over wall-clock
//! time. [`Timeline`] accumulates event counts (or gauge samples) into
//! fixed-width intervals of simulated time and can render the series as
//! per-interval rates.

/// Accumulates values into fixed-width time buckets.
///
/// Two usage styles:
///
/// * **rate mode** — call [`Timeline::add`] with event counts (e.g. one per
///   completed request); [`Timeline::rates`] then yields events/second.
/// * **gauge mode** — call [`Timeline::observe`] with instantaneous values
///   (e.g. resident memory); [`Timeline::averages`] yields per-interval
///   means.
#[derive(Clone, Debug)]
pub struct Timeline {
    interval_ns: u64,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width in nanoseconds.
    ///
    /// # Panics
    /// Panics if `interval_ns` is zero.
    pub fn new(interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "timeline interval must be positive");
        Timeline {
            interval_ns,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Bucket width in nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    fn bucket(&mut self, t_ns: u64) -> usize {
        let idx = (t_ns / self.interval_ns) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        idx
    }

    /// Adds `n` events at time `t_ns` (rate mode).
    pub fn add(&mut self, t_ns: u64, n: u64) {
        let b = self.bucket(t_ns);
        self.sums[b] += n as f64;
        self.counts[b] += n;
    }

    /// Records a gauge observation `v` at time `t_ns` (gauge mode).
    pub fn observe(&mut self, t_ns: u64, v: f64) {
        let b = self.bucket(t_ns);
        self.sums[b] += v;
        self.counts[b] += 1;
    }

    /// Number of (possibly empty) buckets covering the recorded span.
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// Per-bucket event rate in events/second (rate mode).
    pub fn rates(&self) -> Vec<f64> {
        let secs = self.interval_ns as f64 / 1e9;
        self.sums.iter().map(|s| s / secs).collect()
    }

    /// Per-bucket mean of observations; empty buckets yield 0.0 (gauge mode).
    pub fn averages(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Start time (seconds) of bucket `idx`.
    pub fn bucket_start_secs(&self, idx: usize) -> f64 {
        idx as f64 * self.interval_ns as f64 / 1e9
    }

    /// Renders the series as an ASCII sparkline-style chart, `width`
    /// characters wide, for quick terminal inspection of Figure 4/5 shapes.
    pub fn ascii_chart(&self, height: usize) -> String {
        let rates = self.rates();
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        if max == 0.0 || rates.is_empty() {
            return String::from("(empty)\n");
        }
        let mut out = String::new();
        for row in (0..height).rev() {
            let threshold = max * (row as f64 + 0.5) / height as f64;
            let label = if row == height - 1 {
                format!("{max:>10.0} |")
            } else if row == 0 {
                format!("{:>10.0} |", 0.0)
            } else {
                String::from("           |")
            };
            out.push_str(&label);
            for &r in &rates {
                out.push(if r >= threshold { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out.push_str("           +");
        out.push_str(&"-".repeat(rates.len()));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn events_land_in_correct_buckets() {
        let mut t = Timeline::new(SEC);
        t.add(0, 1);
        t.add(SEC - 1, 1);
        t.add(SEC, 5);
        t.add(3 * SEC + 17, 2);
        let rates = t.rates();
        assert_eq!(rates.len(), 4);
        assert_eq!(rates[0], 2.0);
        assert_eq!(rates[1], 5.0);
        assert_eq!(rates[2], 0.0);
        assert_eq!(rates[3], 2.0);
    }

    #[test]
    fn rates_scale_with_interval() {
        let mut t = Timeline::new(SEC / 10); // 100 ms buckets
        t.add(0, 50);
        assert_eq!(t.rates()[0], 500.0); // 50 events per 100 ms = 500/s
    }

    #[test]
    fn gauge_averages() {
        let mut t = Timeline::new(SEC);
        t.observe(10, 10.0);
        t.observe(20, 30.0);
        t.observe(SEC + 1, 7.0);
        let avg = t.averages();
        assert_eq!(avg[0], 20.0);
        assert_eq!(avg[1], 7.0);
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(SEC);
        assert!(t.is_empty());
        assert!(t.rates().is_empty());
        assert_eq!(t.ascii_chart(5), "(empty)\n");
    }

    #[test]
    fn bucket_start_times() {
        let t = Timeline::new(SEC / 2);
        assert_eq!(t.bucket_start_secs(0), 0.0);
        assert_eq!(t.bucket_start_secs(4), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = Timeline::new(0);
    }

    #[test]
    fn ascii_chart_renders_bars() {
        let mut t = Timeline::new(SEC);
        t.add(0, 100);
        t.add(SEC, 50);
        let chart = t.ascii_chart(4);
        assert!(chart.contains('#'));
        assert!(chart.lines().count() >= 5);
    }
}
