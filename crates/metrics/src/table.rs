//! Plain-text and markdown table rendering.
//!
//! The benchmark binaries print each of the paper's tables with this
//! renderer, so that `cargo run -p slimio-bench --bin table3` produces
//! output directly comparable to the paper's Table 3 and paste-able into
//! `EXPERIMENTS.md`.

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer rows
    /// extend the table width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as an ASCII table with a header separator.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let line = |cells: &[String], w: &[usize]| -> String {
            let mut s = String::new();
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!("| {cell:<width$} "));
            }
            s.push('|');
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &w));
        out.push('|');
        for width in &w {
            out.push_str(&"-".repeat(width + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &w));
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        // Markdown ignores padding, but aligned output stays readable raw.
        self.render()
    }

    /// Renders as CSV (no quoting — cells must not contain commas).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a nanosecond quantity as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats a byte quantity with binary units.
pub fn fmt_bytes(b: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    if b >= GIB {
        format!("{:.2}GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.2}MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.2}KiB", b as f64 / KIB as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("long-name"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["only", "header"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(12), "12B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00GiB");
    }
}
