//! Small statistics helpers used across the evaluation harness.

/// Running mean/variance accumulator (Welford's online algorithm).
///
/// Numerically stable for long runs, unlike the naive sum-of-squares
/// formulation.
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0.0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Throughput in MB/s (decimal megabytes, as the paper reports recovery
/// throughput) given bytes moved and elapsed nanoseconds.
pub fn mb_per_sec(bytes: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    (bytes as f64 / 1e6) / (elapsed_ns as f64 / 1e9)
}

/// Events per second given a count and elapsed nanoseconds.
pub fn per_sec(count: u64, elapsed_ns: u64) -> f64 {
    if elapsed_ns == 0 {
        return 0.0;
    }
    count as f64 / (elapsed_ns as f64 / 1e9)
}

/// Relative change `(new - old) / old`, as a signed percentage.
pub fn pct_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    (new - old) / old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_and_stddev() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        // Known dataset: population stddev 2, sample stddev = sqrt(32/7).
        assert!((r.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn empty_running_is_zeroed() {
        let r = Running::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.stddev(), 0.0);
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
    }

    #[test]
    fn single_observation_variance_zero() {
        let mut r = Running::new();
        r.push(42.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.mean(), 42.0);
    }

    #[test]
    fn throughput_helpers() {
        // 20 GB in 55.38 s ≈ 361 MB/s (paper Table 5 ballpark).
        let bytes = 20_000_000_000u64;
        let ns = 55_380_000_000u64;
        let t = mb_per_sec(bytes, ns);
        assert!((t - 361.14).abs() < 0.5, "{t}");
        assert_eq!(mb_per_sec(1, 0), 0.0);
        assert!((per_sec(57_481, 1_000_000_000) - 57_481.0).abs() < 1e-9);
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(100.0, 130.0) - 30.0).abs() < 1e-12);
        assert!((pct_change(100.0, 75.0) + 25.0).abs() < 1e-12);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }
}
