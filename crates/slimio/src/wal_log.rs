//! The circular WAL byte log over the WAL Region (§4.2).
//!
//! WAL offsets are *monotonic byte positions*; the log maps them onto the
//! region's LBAs modulo its capacity. The region between `tail` (oldest
//! live byte) and `head` (next byte to write) is live; a WAL-snapshot
//! commit advances `tail` to the fork point and the superseded pages are
//! deallocated — whole Reclaim Units at a time under FDP.
//!
//! This type is pure bookkeeping: it emits [`PageWrite`]s (LBA + payload)
//! and deallocation ranges; the backend submits them through the WAL-Path
//! ring.

use slimio_nvme::LBA_BYTES;

/// One page-aligned write the backend must submit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageWrite {
    /// Target LBA.
    pub lba: u64,
    /// Exactly 4 KiB of payload.
    pub data: Box<[u8]>,
}

/// Errors from the WAL log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalLogError {
    /// The live range would exceed the region (rotate the WAL first).
    Full {
        /// Live bytes currently held.
        live: u64,
        /// Region capacity in bytes.
        capacity: u64,
    },
}

impl std::fmt::Display for WalLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalLogError::Full { live, capacity } => {
                write!(f, "WAL region full: {live} live bytes of {capacity}")
            }
        }
    }
}

impl std::error::Error for WalLogError {}

const PAGE: u64 = LBA_BYTES as u64;

/// Circular byte log over `[region_lba, region_lba + region_lbas)`.
#[derive(Clone, Debug)]
pub struct WalLog {
    region_lba: u64,
    region_lbas: u64,
    /// Oldest live byte (monotonic).
    tail: u64,
    /// Next byte to write (monotonic).
    head: u64,
    /// Bytes of the current partial page (`head % PAGE` bytes).
    staged: Vec<u8>,
}

impl WalLog {
    /// Creates an empty log over the region.
    pub fn new(region_lba: u64, region_lbas: u64) -> Self {
        assert!(region_lbas >= 2, "WAL region needs at least 2 LBAs");
        WalLog {
            region_lba,
            region_lbas,
            tail: 0,
            head: 0,
            staged: Vec::with_capacity(LBA_BYTES),
        }
    }

    /// Restores a log after recovery: `head` bytes are live starting at
    /// `tail`; `partial` is the content of the final partial page
    /// (`head % 4096` bytes).
    pub fn restore(
        region_lba: u64,
        region_lbas: u64,
        tail: u64,
        head: u64,
        partial: Vec<u8>,
    ) -> Self {
        assert!(head >= tail);
        assert_eq!(partial.len() as u64, head % PAGE);
        WalLog {
            region_lba,
            region_lbas,
            tail,
            head,
            staged: partial,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.region_lbas * PAGE
    }

    /// Oldest live byte offset.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Next byte offset to be written.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Live bytes (`head - tail`).
    pub fn live_bytes(&self) -> u64 {
        self.head - self.tail
    }

    /// LBA holding byte offset `off`.
    pub fn lba_of(&self, off: u64) -> u64 {
        self.region_lba + (off / PAGE) % self.region_lbas
    }

    /// Appends bytes, returning the full-page writes that became ready.
    /// The final partial page stays staged until [`WalLog::sync_page`].
    pub fn append(&mut self, data: &[u8]) -> Result<Vec<PageWrite>, WalLogError> {
        // Reject before mutating: the whole append must fit with one page
        // of slack (the page about to be overwritten must not be live).
        let live_after = self.head - self.tail + data.len() as u64;
        if live_after > self.capacity() - PAGE {
            return Err(WalLogError::Full {
                live: live_after,
                capacity: self.capacity(),
            });
        }
        let mut out = Vec::new();
        let mut rest = data;
        while !rest.is_empty() {
            let room = LBA_BYTES - self.staged.len();
            let take = room.min(rest.len());
            self.staged.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            self.head += take as u64;
            if self.staged.len() == LBA_BYTES {
                let page_off = self.head - PAGE;
                out.push(PageWrite {
                    lba: self.lba_of(page_off),
                    data: std::mem::take(&mut self.staged).into_boxed_slice(),
                });
                self.staged.reserve(LBA_BYTES);
            }
        }
        Ok(out)
    }

    /// The current partial tail page as a zero-padded write (for syncs).
    /// Returns `None` when the head is page-aligned. The staged bytes stay
    /// staged — the page will simply be rewritten when it fills.
    pub fn sync_page(&self) -> Option<PageWrite> {
        if self.staged.is_empty() {
            return None;
        }
        let mut data = self.staged.clone();
        data.resize(LBA_BYTES, 0);
        let page_off = self.head - self.head % PAGE;
        Some(PageWrite {
            lba: self.lba_of(page_off),
            data: data.into_boxed_slice(),
        })
    }

    /// Advances the tail to `new_tail` (the WAL-snapshot fork point) and
    /// returns the whole LBA ranges `(lba, count)` that became dead and
    /// should be deallocated.
    ///
    /// # Panics
    /// Panics if `new_tail` is outside `[tail, head]`.
    pub fn truncate_to(&mut self, new_tail: u64) -> Vec<(u64, u64)> {
        assert!(
            (self.tail..=self.head).contains(&new_tail),
            "truncate target {new_tail} outside live range [{}, {}]",
            self.tail,
            self.head
        );
        let first_dead_page = self.tail / PAGE;
        // Only pages strictly below the new tail's page are fully dead.
        let end_dead_page = new_tail / PAGE;
        self.tail = new_tail;
        ranges_of_pages(
            self.region_lba,
            self.region_lbas,
            first_dead_page,
            end_dead_page,
        )
    }
}

/// Converts a monotonic page range into contiguous LBA ranges, splitting
/// at the circular wrap point.
fn ranges_of_pages(
    region_lba: u64,
    region_lbas: u64,
    start_page: u64,
    end_page: u64,
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut p = start_page;
    while p < end_page {
        let slot = p % region_lbas;
        let run = (region_lbas - slot).min(end_page - p);
        out.push((region_lba + slot, run));
        p += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> WalLog {
        WalLog::new(100, 16) // 64 KiB region at LBA 100
    }

    #[test]
    fn small_appends_stage_until_page_fills() {
        let mut w = log();
        let pages = w.append(&[1u8; 1000]).unwrap();
        assert!(pages.is_empty());
        assert_eq!(w.head(), 1000);
        let pages = w.append(&[2u8; 4000]).unwrap();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].lba, 100);
        assert_eq!(&pages[0].data[..1000], &[1u8; 1000][..]);
        assert_eq!(&pages[0].data[1000..], &[2u8; 3096][..]);
        assert_eq!(w.head(), 5000);
    }

    #[test]
    fn large_append_emits_multiple_pages() {
        let mut w = log();
        let pages = w.append(&[9u8; 4096 * 3 + 10]).unwrap();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0].lba, 100);
        assert_eq!(pages[1].lba, 101);
        assert_eq!(pages[2].lba, 102);
    }

    #[test]
    fn sync_page_pads_and_repeats_lba() {
        let mut w = log();
        w.append(&[7u8; 100]).unwrap();
        let p1 = w.sync_page().unwrap();
        assert_eq!(p1.lba, 100);
        assert_eq!(&p1.data[..100], &[7u8; 100][..]);
        assert!(p1.data[100..].iter().all(|&b| b == 0));
        // More bytes, same page: sync rewrites the same LBA.
        w.append(&[8u8; 50]).unwrap();
        let p2 = w.sync_page().unwrap();
        assert_eq!(p2.lba, 100);
        assert_eq!(&p2.data[100..150], &[8u8; 50][..]);
        // Page-aligned head → nothing to sync.
        w.append(&vec![1u8; 4096 - 150]).unwrap();
        assert!(w.sync_page().is_none());
    }

    #[test]
    fn wraps_around_the_region() {
        let mut w = log();
        // Fill 15 pages, truncate to free them, keep going.
        w.append(&vec![1u8; 4096 * 15]).unwrap();
        let dead = w.truncate_to(4096 * 15);
        assert_eq!(dead, vec![(100, 15)]);
        let pages = w.append(&vec![2u8; 4096 * 3]).unwrap();
        // Offsets 15,16,17 → LBAs 115, 100, 101 (wrap).
        assert_eq!(pages[0].lba, 115);
        assert_eq!(pages[1].lba, 100);
        assert_eq!(pages[2].lba, 101);
    }

    #[test]
    fn full_region_is_rejected_atomically() {
        let mut w = log();
        // Capacity 64 KiB minus one page of slack = 15 pages.
        w.append(&vec![1u8; 4096 * 15]).unwrap();
        let head_before = w.head();
        let err = w.append(&[1u8; 1]).unwrap_err();
        assert!(matches!(err, WalLogError::Full { .. }));
        assert_eq!(w.head(), head_before, "failed append must not mutate");
        // Truncating makes room again.
        w.truncate_to(4096 * 10);
        w.append(&[1u8; 1]).unwrap();
    }

    #[test]
    fn truncate_splits_wrapped_ranges() {
        let mut w = log();
        w.append(&vec![1u8; 4096 * 15]).unwrap();
        w.truncate_to(4096 * 15);
        w.append(&vec![2u8; 4096 * 10]).unwrap(); // pages 15..25 → wraps
        let dead = w.truncate_to(4096 * 25);
        assert_eq!(dead, vec![(115, 1), (100, 9)]);
    }

    #[test]
    fn partial_page_at_truncate_point_survives() {
        let mut w = log();
        w.append(&vec![1u8; 4096 * 2 + 100]).unwrap();
        // Fork point mid-page 2: only pages 0 and 1 are dead.
        let dead = w.truncate_to(4096 * 2 + 50);
        assert_eq!(dead, vec![(100, 2)]);
        assert_eq!(w.live_bytes(), 50);
    }

    #[test]
    #[should_panic(expected = "outside live range")]
    fn truncate_past_head_panics() {
        let mut w = log();
        w.append(&[1u8; 100]).unwrap();
        w.truncate_to(5000);
    }

    #[test]
    fn restore_resumes_mid_page() {
        let staged = vec![3u8; 100];
        let mut w = WalLog::restore(100, 16, 4096, 4096 + 100, staged);
        assert_eq!(w.live_bytes(), 100);
        // Appending continues in the same page.
        let pages = w.append(&vec![4u8; 4096 - 100]).unwrap();
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].lba, 101);
        assert_eq!(&pages[0].data[..100], &[3u8; 100][..]);
    }
}
