//! The SlimIO persistence backend: per-path rings + LBA space management.
//!
//! Implements [`slimio_imdb::backend::PersistBackend`] so the unmodified
//! engine (`slimio-imdb`) runs on top — mirroring the paper's claim that
//! Redis's logging policy and snapshot format are preserved while only the
//! I/O path changes (§4.1).
//!
//! Topology (Figure 3): the **WAL-Path** is an enter-driven ring used by
//! the main process — submission costs one SQE push plus an amortized
//! `io_uring_enter`; completions are harvested by a dedicated handler
//! (modeled by opportunistic reaps). The **Snapshot-Path** is an SQPOLL
//! ring: a poller thread drains the SQ, so the snapshot process submits
//! with zero syscalls. Both rings target the same emulated NVMe device;
//! every write carries its stream's Placement ID (§4.3).

use std::collections::HashMap;
use std::sync::Arc;

use slimio_des::SimTime;
use slimio_ftl::Pid;
use slimio_imdb::backend::{BackendError, IoTiming, PersistBackend, SnapshotKind};
use slimio_imdb::wal as walcodec;
use slimio_nvme::{DeviceError, NvmeDevice, LBA_BYTES};
use slimio_uring::{Cqe, CqeResult, IoUring, PassthruCosts, RingError, SharedClock, Sqe, SqeOp};
use std::sync::Mutex;

use crate::layout::Layout;
use crate::metadata::{pick_newest, MetaRecord};
use crate::pids;
use crate::readahead::RecoveryReader;
use crate::slots::{SlotRole, SlotTable};
use crate::wal_log::{PageWrite, WalLog};

/// Backend configuration.
#[derive(Clone, Copy, Debug)]
pub struct PassthruConfig {
    /// SQ depth of each ring.
    pub ring_depth: usize,
    /// Fraction of the device given to the WAL region.
    pub wal_frac: f64,
    /// Run the Snapshot-Path in SQPOLL mode (the paper's configuration;
    /// `false` is the ablation knob).
    pub sqpoll_snapshot: bool,
    /// CPU cost constants for ring operations.
    pub costs: PassthruCosts,
}

impl Default for PassthruConfig {
    fn default() -> Self {
        PassthruConfig {
            ring_depth: 256,
            wal_frac: 0.40,
            sqpoll_snapshot: true,
            costs: PassthruCosts::default(),
        }
    }
}

struct SnapState {
    kind: SnapshotKind,
    slot: usize,
    staged: Vec<u8>,
    written_pages: u64,
    stream_bytes: u64,
    fork_tail: u64,
}

/// The SlimIO backend.
pub struct PassthruBackend {
    device: Arc<Mutex<NvmeDevice>>,
    clock: SharedClock,
    cfg: PassthruConfig,
    layout: Layout,
    pids: pids::PidSet,
    wal_ring: IoUring,
    snap_ring: IoUring,
    wal: WalLog,
    slots: SlotTable,
    epoch: u64,
    next_ud: u64,
    snap: Option<SnapState>,
    /// Retry bookkeeping for submitted page writes; populated only while a
    /// device fault plan is armed (`track_faults`), so the common path
    /// stays allocation- and lookup-free.
    inflight: Inflight,
    /// Snapshot of `device.fault_armed()`, refreshed at each backend entry
    /// point that writes.
    track_faults: bool,
}

fn role_of(kind: SnapshotKind) -> SlotRole {
    match kind {
        SnapshotKind::WalSnapshot => SlotRole::WalSnapshot,
        SnapshotKind::OnDemand => SlotRole::OnDemand,
    }
}

/// Bounded re-drives of a transiently failed page write — the completion
/// handler's requeue. Mirrors the kernel path's block-layer retry bound.
const WRITE_RETRIES: usize = 64;

/// In-flight page writes kept for retry while a fault plan is armed,
/// keyed by SQE user_data. Never populated on the unarmed path.
type Inflight = HashMap<u64, (PageWrite, Pid)>;

/// Handles one CQE: success clears any retry bookkeeping; an injected
/// transient failure of a tracked write is re-driven synchronously on the
/// device (bounded); every other error surfaces.
fn absorb_cqe(
    device: &Arc<Mutex<NvmeDevice>>,
    inflight: &mut Inflight,
    cqe: Cqe,
) -> Result<SimTime, BackendError> {
    if let CqeResult::Error(e) = &cqe.result {
        if *e == DeviceError::Injected {
            if let Some((pw, pid)) = inflight.remove(&cqe.user_data) {
                let mut dev = device.lock().unwrap();
                for _ in 0..WRITE_RETRIES {
                    match dev.write(pw.lba, 1, pid, Some(&pw.data), cqe.completed_at) {
                        Ok(c) => return Ok(c.done_at),
                        Err(DeviceError::Injected) => continue,
                        Err(e) => return Err(BackendError::Device(e)),
                    }
                }
                return Err(BackendError::Device(DeviceError::Injected));
            }
        }
        return Err(BackendError::Device(e.clone()));
    }
    if !inflight.is_empty() {
        inflight.remove(&cqe.user_data);
    }
    Ok(cqe.completed_at)
}

impl PassthruBackend {
    /// Creates a backend over a fresh device.
    pub fn new(device: Arc<Mutex<NvmeDevice>>, clock: SharedClock, cfg: PassthruConfig) -> Self {
        let capacity = device.lock().unwrap().capacity_blocks();
        let layout = Layout::partition(capacity, cfg.wal_frac);
        // Format: creating a *new* SlimIO instance takes ownership of the
        // LBA space and deallocates it wholesale (use
        // [`PassthruBackend::recover`] to adopt existing state instead).
        device
            .lock()
            .unwrap()
            .deallocate(0, capacity, SimTime::ZERO)
            .expect("format LBA space");
        Self::build(device, clock, cfg, layout, pids::PidSet::for_shard(0))
    }

    /// Creates a backend over a caller-chosen LBA sub-range of a fresh
    /// device, tagging its streams with `pids`. One sharded server runs N
    /// of these over one device; each formats (deallocates) only its own
    /// slice. The caller is responsible for handing out disjoint layouts.
    pub fn new_at(
        device: Arc<Mutex<NvmeDevice>>,
        clock: SharedClock,
        cfg: PassthruConfig,
        layout: Layout,
        pids: pids::PidSet,
    ) -> Self {
        device
            .lock()
            .unwrap()
            .deallocate(
                layout.meta_lba,
                layout.end_lba() - layout.meta_lba,
                SimTime::ZERO,
            )
            .expect("format shard LBA range");
        Self::build(device, clock, cfg, layout, pids)
    }

    fn build(
        device: Arc<Mutex<NvmeDevice>>,
        clock: SharedClock,
        cfg: PassthruConfig,
        layout: Layout,
        pids: pids::PidSet,
    ) -> Self {
        let wal_ring = IoUring::new_enter(Arc::clone(&device), clock.clone(), cfg.ring_depth);
        let snap_ring = if cfg.sqpoll_snapshot {
            IoUring::new_sqpoll(Arc::clone(&device), clock.clone(), cfg.ring_depth)
        } else {
            IoUring::new_enter(Arc::clone(&device), clock.clone(), cfg.ring_depth)
        };
        PassthruBackend {
            wal: WalLog::new(layout.wal_lba, layout.wal_lbas),
            device,
            clock,
            cfg,
            layout,
            pids,
            wal_ring,
            snap_ring,
            slots: SlotTable::default(),
            epoch: 0,
            next_ud: 0,
            snap: None,
            inflight: Inflight::new(),
            track_faults: false,
        }
    }

    /// Rebuilds a backend from a device that already holds SlimIO state —
    /// the §4.2 recovery procedure, step 1: read the metadata region,
    /// derive the slot roles and WAL boundaries, then scan the WAL region
    /// forward from the tail to find the durable head.
    pub fn recover(
        device: Arc<Mutex<NvmeDevice>>,
        clock: SharedClock,
        cfg: PassthruConfig,
    ) -> Result<Self, BackendError> {
        let capacity = device.lock().unwrap().capacity_blocks();
        let layout = Layout::partition(capacity, cfg.wal_frac);
        Self::recover_at(device, clock, cfg, layout, pids::PidSet::for_shard(0))
    }

    /// [`PassthruBackend::recover`] over a caller-chosen LBA sub-range —
    /// the shard-recovery entry point. `layout` must match the one the
    /// shard was created with.
    pub fn recover_at(
        device: Arc<Mutex<NvmeDevice>>,
        clock: SharedClock,
        cfg: PassthruConfig,
        layout: Layout,
        pids: pids::PidSet,
    ) -> Result<Self, BackendError> {
        // Step 1: metadata.
        let (_, page_a) = device
            .lock()
            .unwrap()
            .read(layout.meta_lba, 1, SimTime::ZERO)?;
        let (_, page_b) = device
            .lock()
            .unwrap()
            .read(layout.meta_lba + 1, 1, SimTime::ZERO)?;
        let meta = match (page_a, page_b) {
            (Some(a), Some(b)) => pick_newest(&a, &b).unwrap_or_default(),
            _ => MetaRecord::default(),
        };
        let slots = SlotTable::from_meta(meta.roles, meta.slot_len);

        // Step 3 precompute: scan the WAL region from the tail, accepting
        // records while they parse and their sequence numbers increase —
        // stale previous-lap data and deallocated zeroes both terminate
        // the scan.
        let tail = meta.wal_tail;
        let page = LBA_BYTES as u64;
        let mut buf: Vec<u8> = Vec::new();
        let mut consumed = 0usize;
        let mut last_seq: Option<u64> = None;
        let skip = (tail % page) as usize;
        let mut next_off = tail - tail % page;
        let region_end = tail + layout.wal_bytes() - page; // one page slack
        'scan: while next_off < region_end {
            let lba = layout.wal_lba + (next_off / page) % layout.wal_lbas;
            let batch = 64u64.min((region_end - next_off) / page).max(1);
            // Clamp the batch to the contiguous run before the wrap.
            let run = (layout.wal_lbas - (lba - layout.wal_lba)).min(batch);
            let (_, data) = device.lock().unwrap().read(lba, run, SimTime::ZERO)?;
            let Some(d) = data else {
                break; // timing-only device: nothing to scan
            };
            buf.extend_from_slice(&d);
            next_off += run * page;
            // Parse as far as possible.
            loop {
                let avail = &buf[skip..];
                match walcodec::decode(&avail[consumed..]) {
                    Ok((rec, used)) => {
                        if last_seq.is_some_and(|s| rec.seq() <= s) {
                            break 'scan; // stale lap data
                        }
                        last_seq = Some(rec.seq());
                        consumed += used;
                    }
                    Err(walcodec::WalDecodeError::Truncated) => break, // need more pages
                    Err(_) => break 'scan,                             // torn tail or garbage
                }
            }
        }
        let head = tail + consumed as u64;
        // The staged partial page spans [head_floor, head); the scan buffer
        // starts at the tail's page floor, which is never later.
        let buf_base = tail - tail % page;
        let partial_start = (head - head % page) - buf_base;
        let partial = buf[partial_start as usize..skip + consumed].to_vec();
        let wal = WalLog::restore(layout.wal_lba, layout.wal_lbas, tail, head, partial);

        let wal_ring = IoUring::new_enter(Arc::clone(&device), clock.clone(), cfg.ring_depth);
        let snap_ring = if cfg.sqpoll_snapshot {
            IoUring::new_sqpoll(Arc::clone(&device), clock.clone(), cfg.ring_depth)
        } else {
            IoUring::new_enter(Arc::clone(&device), clock.clone(), cfg.ring_depth)
        };
        Ok(PassthruBackend {
            device,
            clock,
            cfg,
            layout,
            pids,
            wal_ring,
            snap_ring,
            wal,
            slots,
            epoch: meta.epoch,
            next_ud: 0,
            snap: None,
            inflight: Inflight::new(),
            track_faults: false,
        })
    }

    /// The LBA layout in use.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The placement-stream PIDs this backend writes with.
    pub fn pids(&self) -> pids::PidSet {
        self.pids
    }

    fn pid_of(&self, kind: SnapshotKind) -> Pid {
        match kind {
            SnapshotKind::WalSnapshot => self.pids.wal_snapshot,
            SnapshotKind::OnDemand => self.pids.on_demand,
        }
    }

    /// The device handle.
    pub fn device(&self) -> &Arc<Mutex<NvmeDevice>> {
        &self.device
    }

    /// Current device write amplification.
    pub fn waf(&self) -> f64 {
        self.device.lock().unwrap().waf()
    }

    /// Current slot table (diagnostics).
    pub fn slot_table(&self) -> &SlotTable {
        &self.slots
    }

    fn ud(&mut self) -> u64 {
        self.next_ud += 1;
        self.next_ud
    }

    /// Refreshes `track_faults` from the device; called at each backend
    /// entry point that writes, before any submissions.
    fn refresh_fault_tracking(&mut self) {
        self.track_faults = self.device.lock().unwrap().fault_armed();
    }

    /// Submits to a ring, draining it on backpressure.
    fn submit(
        ring: &mut IoUring,
        device: &Arc<Mutex<NvmeDevice>>,
        inflight: &mut Inflight,
        mut sqe: Sqe,
    ) -> Result<(), BackendError> {
        loop {
            match ring.submit(sqe) {
                Ok(()) => return Ok(()),
                Err(RingError::SqFull(back)) => {
                    sqe = *back;
                    ring.enter();
                    while let Some(cqe) = ring.reap() {
                        absorb_cqe(device, inflight, cqe)?;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_page(
        ring: &mut IoUring,
        device: &Arc<Mutex<NvmeDevice>>,
        inflight: &mut Inflight,
        track: bool,
        ud: u64,
        pw: PageWrite,
        pid: Pid,
        now: SimTime,
    ) -> Result<(), BackendError> {
        if track {
            inflight.insert(ud, (pw.clone(), pid));
        }
        Self::submit(
            ring,
            device,
            inflight,
            Sqe {
                user_data: ud,
                op: SqeOp::Write {
                    lba: pw.lba,
                    blocks: 1,
                    pid,
                    data: Some(pw.data),
                },
                submitted_at: now,
            },
        )
    }

    /// Submits a run of page writes as vectored SQEs: contiguous-LBA runs
    /// coalesce into one multi-block SQE each (the `writev` shape), so a
    /// group-committed batch reaches the device as a handful of commands
    /// instead of one per page. Used only while no fault plan is armed:
    /// the retry bookkeeping in [`absorb_cqe`] re-drives single-block
    /// writes, and fault plans count device write commands, so the armed
    /// path must keep its one-SQE-per-page shape.
    fn submit_pages_vectored(
        ring: &mut IoUring,
        device: &Arc<Mutex<NvmeDevice>>,
        inflight: &mut Inflight,
        next_ud: &mut u64,
        mut pages: Vec<PageWrite>,
        pid: Pid,
        now: SimTime,
    ) -> Result<(), BackendError> {
        /// Longest run folded into one SQE (bounds the gather copy).
        const MAX_RUN: usize = 64;
        let mut i = 0;
        while i < pages.len() {
            let mut run = 1;
            while i + run < pages.len()
                && run < MAX_RUN
                && pages[i + run].lba == pages[i].lba + run as u64
            {
                run += 1;
            }
            *next_ud += 1;
            let ud = *next_ud;
            let sqe = if run == 1 {
                Sqe {
                    user_data: ud,
                    op: SqeOp::Write {
                        lba: pages[i].lba,
                        blocks: 1,
                        pid,
                        data: Some(std::mem::take(&mut pages[i].data)),
                    },
                    submitted_at: now,
                }
            } else {
                let mut data = Vec::with_capacity(run * LBA_BYTES);
                for pw in &pages[i..i + run] {
                    data.extend_from_slice(&pw.data);
                }
                Sqe {
                    user_data: ud,
                    op: SqeOp::Write {
                        lba: pages[i].lba,
                        blocks: run as u64,
                        pid,
                        data: Some(data.into_boxed_slice()),
                    },
                    submitted_at: now,
                }
            };
            Self::submit(ring, device, inflight, sqe)?;
            i += run;
        }
        Ok(())
    }

    /// Waits out a ring, surfacing the first device error and returning
    /// the latest completion time.
    fn drain(
        ring: &mut IoUring,
        device: &Arc<Mutex<NvmeDevice>>,
        inflight: &mut Inflight,
        now: SimTime,
    ) -> Result<SimTime, BackendError> {
        let mut t = now;
        for cqe in ring.wait_all() {
            t = t.max(absorb_cqe(device, inflight, cqe)?);
        }
        Ok(t)
    }

    /// Writes and flushes a metadata record; returns its completion time.
    fn commit_meta(&mut self, record: &MetaRecord, now: SimTime) -> Result<SimTime, BackendError> {
        let page = record.encode();
        let ud = self.ud();
        Self::submit_page(
            &mut self.wal_ring,
            &self.device,
            &mut self.inflight,
            self.track_faults,
            ud,
            PageWrite {
                lba: self.layout.meta_lba + record.target_lba(),
                data: page.into_boxed_slice(),
            },
            self.pids.meta,
            now,
        )?;
        let ud = self.ud();
        Self::submit(
            &mut self.wal_ring,
            &self.device,
            &mut self.inflight,
            Sqe {
                user_data: ud,
                op: SqeOp::Flush,
                submitted_at: now,
            },
        )?;
        Self::drain(&mut self.wal_ring, &self.device, &mut self.inflight, now)
    }

    fn deallocate(&mut self, ranges: &[(u64, u64)], now: SimTime) -> Result<SimTime, BackendError> {
        for &(lba, blocks) in ranges {
            if blocks == 0 {
                continue;
            }
            let ud = self.ud();
            Self::submit(
                &mut self.wal_ring,
                &self.device,
                &mut self.inflight,
                Sqe {
                    user_data: ud,
                    op: SqeOp::Deallocate { lba, blocks },
                    submitted_at: now,
                },
            )?;
        }
        Self::drain(&mut self.wal_ring, &self.device, &mut self.inflight, now)
    }
}

impl PersistBackend for PassthruBackend {
    fn wal_append(&mut self, data: &[u8], now: SimTime) -> Result<IoTiming, BackendError> {
        self.clock.advance_to(now);
        self.refresh_fault_tracking();
        let pages = self
            .wal
            .append(data)
            .map_err(|e| BackendError::Snapshot(e.to_string()))?;
        let n = pages.len() as u64;
        if self.track_faults {
            for pw in pages {
                let ud = self.ud();
                Self::submit_page(
                    &mut self.wal_ring,
                    &self.device,
                    &mut self.inflight,
                    self.track_faults,
                    ud,
                    pw,
                    self.pids.wal,
                    now,
                )?;
            }
        } else {
            Self::submit_pages_vectored(
                &mut self.wal_ring,
                &self.device,
                &mut self.inflight,
                &mut self.next_ud,
                pages,
                self.pids.wal,
                now,
            )?;
        }
        // Submission-side cost only: the dedicated completion handler (the
        // paper's CQ thread) reaps off the hot path. Charged per page even
        // when runs coalesce into fewer SQEs, so simulated figures do not
        // depend on batch geometry; the vectoring saves ring slots and
        // device commands, which the live path measures directly.
        let cpu = self.cfg.costs.submit_sqpoll(n.max(1));
        // Opportunistic reap so completions don't pile up.
        while let Some(cqe) = self.wal_ring.reap() {
            absorb_cqe(&self.device, &mut self.inflight, cqe)?;
        }
        Ok(IoTiming {
            done_at: now + cpu,
            cpu,
        })
    }

    fn wal_sync(&mut self, now: SimTime) -> Result<IoTiming, BackendError> {
        self.clock.advance_to(now);
        self.refresh_fault_tracking();
        if let Some(pw) = self.wal.sync_page() {
            let ud = self.ud();
            Self::submit_page(
                &mut self.wal_ring,
                &self.device,
                &mut self.inflight,
                self.track_faults,
                ud,
                pw,
                self.pids.wal,
                now,
            )?;
        }
        let ud = self.ud();
        Self::submit(
            &mut self.wal_ring,
            &self.device,
            &mut self.inflight,
            Sqe {
                user_data: ud,
                op: SqeOp::Flush,
                submitted_at: now,
            },
        )?;
        let cpu = self.cfg.costs.submit_enter(1) + self.cfg.costs.cqe_reap;
        let done = Self::drain(
            &mut self.wal_ring,
            &self.device,
            &mut self.inflight,
            now + cpu,
        )?;
        Ok(IoTiming { done_at: done, cpu })
    }

    fn wal_len(&self) -> u64 {
        self.wal.live_bytes()
    }

    fn snapshot_begin(
        &mut self,
        kind: SnapshotKind,
        now: SimTime,
    ) -> Result<IoTiming, BackendError> {
        if self.snap.is_some() {
            return Err(BackendError::Snapshot(
                "a snapshot is already in progress".into(),
            ));
        }
        self.snap = Some(SnapState {
            kind,
            slot: self.slots.reserve(),
            staged: Vec::with_capacity(LBA_BYTES),
            written_pages: 0,
            stream_bytes: 0,
            fork_tail: self.wal.head(),
        });
        Ok(IoTiming::instant(now))
    }

    fn snapshot_chunk(&mut self, data: &[u8], now: SimTime) -> Result<IoTiming, BackendError> {
        self.clock.advance_to(now);
        self.refresh_fault_tracking();
        let slot_lbas = self.layout.slot_lbas;
        let slot_lba = {
            let st = self
                .snap
                .as_ref()
                .ok_or_else(|| BackendError::Snapshot("no snapshot in progress".into()))?;
            self.layout.slot_lba(st.slot)
        };
        let pids = self.pids;
        let st = self.snap.as_mut().unwrap();
        st.stream_bytes += data.len() as u64;
        st.staged.extend_from_slice(data);
        let mut submitted = 0u64;
        let mut to_submit = Vec::new();
        while st.staged.len() >= LBA_BYTES {
            if st.written_pages >= slot_lbas {
                return Err(BackendError::Snapshot(format!(
                    "snapshot exceeds slot capacity ({} LBAs)",
                    slot_lbas
                )));
            }
            let rest = st.staged.split_off(LBA_BYTES);
            let page = std::mem::replace(&mut st.staged, rest);
            to_submit.push(PageWrite {
                lba: slot_lba + st.written_pages,
                data: page.into_boxed_slice(),
            });
            st.written_pages += 1;
            submitted += 1;
        }
        let pid = match st.kind {
            SnapshotKind::WalSnapshot => pids.wal_snapshot,
            SnapshotKind::OnDemand => pids.on_demand,
        };
        for pw in to_submit {
            let ud = self.ud();
            Self::submit_page(
                &mut self.snap_ring,
                &self.device,
                &mut self.inflight,
                self.track_faults,
                ud,
                pw,
                pid,
                now,
            )?;
        }
        // SQPOLL: pure ring pushes, no syscall.
        let cpu = self.cfg.costs.submit_sqpoll(submitted.max(1));
        while let Some(cqe) = self.snap_ring.reap() {
            absorb_cqe(&self.device, &mut self.inflight, cqe)?;
        }
        Ok(IoTiming {
            done_at: now + cpu,
            cpu,
        })
    }

    fn snapshot_commit(&mut self, now: SimTime) -> Result<IoTiming, BackendError> {
        self.clock.advance_to(now);
        self.refresh_fault_tracking();
        let mut st = self
            .snap
            .take()
            .ok_or_else(|| BackendError::Snapshot("no snapshot in progress".into()))?;
        let slot_lba = self.layout.slot_lba(st.slot);
        // Final partial page, zero-padded.
        if !st.staged.is_empty() {
            if st.written_pages >= self.layout.slot_lbas {
                return Err(BackendError::Snapshot(
                    "snapshot exceeds slot capacity".into(),
                ));
            }
            let mut page = std::mem::take(&mut st.staged);
            page.resize(LBA_BYTES, 0);
            let ud = self.ud();
            let pid = self.pid_of(st.kind);
            Self::submit_page(
                &mut self.snap_ring,
                &self.device,
                &mut self.inflight,
                self.track_faults,
                ud,
                PageWrite {
                    lba: slot_lba + st.written_pages,
                    data: page.into_boxed_slice(),
                },
                pid,
                now,
            )?;
            st.written_pages += 1;
        }
        // 1. Snapshot data durable.
        let ud = self.ud();
        Self::submit(
            &mut self.snap_ring,
            &self.device,
            &mut self.inflight,
            Sqe {
                user_data: ud,
                op: SqeOp::Flush,
                submitted_at: now,
            },
        )?;
        let t_data = Self::drain(&mut self.snap_ring, &self.device, &mut self.inflight, now)?;

        // 2. Promote the reserve slot; advance the WAL tail for
        //    WAL-snapshots; commit metadata atomically.
        let (_promoted, demoted) = self.slots.promote(role_of(st.kind), st.stream_bytes);
        let dead_wal = if st.kind == SnapshotKind::WalSnapshot {
            self.wal.truncate_to(st.fork_tail)
        } else {
            Vec::new()
        };
        self.epoch += 1;
        let record = MetaRecord {
            epoch: self.epoch,
            wal_tail: self.wal.tail(),
            roles: self.slots.roles(),
            slot_len: self.slots.lens(),
        };
        let t_meta = self.commit_meta(&record, t_data)?;

        // 3. Only now deallocate superseded data (§4.2): the demoted slot
        //    and the covered WAL generation.
        let mut ranges = dead_wal;
        ranges.push((self.layout.slot_lba(demoted), self.layout.slot_lbas));
        let t_done = self.deallocate(&ranges, t_meta)?;
        let cpu = self.cfg.costs.submit_enter(2);
        Ok(IoTiming {
            done_at: t_done,
            cpu,
        })
    }

    fn snapshot_abort(&mut self, now: SimTime) -> Result<IoTiming, BackendError> {
        if let Some(st) = self.snap.take() {
            // Drain in-flight writes, then discard the reserve slot pages.
            let t = Self::drain(&mut self.snap_ring, &self.device, &mut self.inflight, now)?;
            let slot_lba = self.layout.slot_lba(st.slot);
            if st.written_pages > 0 {
                self.deallocate(&[(slot_lba, st.written_pages)], t)?;
            }
        }
        Ok(IoTiming::instant(now))
    }

    fn load_snapshot(
        &mut self,
        kind: SnapshotKind,
        now: SimTime,
    ) -> Result<(Option<Vec<u8>>, IoTiming), BackendError> {
        let role = role_of(kind);
        let len = self.slots.len_of(role);
        if len == 0 {
            return Ok((None, IoTiming::instant(now)));
        }
        let slot = self.slots.slot_of(role);
        let reader = RecoveryReader::new(Arc::clone(&self.device));
        let (data, done) = reader.read_stream(self.layout.slot_lba(slot), len, now)?;
        // Batched passthru reads: one submission per batch, no per-page
        // syscalls.
        let batches = len.div_ceil(reader.batch_pages * LBA_BYTES as u64).max(1);
        let cpu = self.cfg.costs.submit_enter(batches);
        Ok((data, IoTiming { done_at: done, cpu }))
    }

    fn load_wal(&mut self, now: SimTime) -> Result<(Vec<u8>, IoTiming), BackendError> {
        // Make sure every accepted append has executed.
        let t0 = Self::drain(&mut self.wal_ring, &self.device, &mut self.inflight, now)?;
        let page = LBA_BYTES as u64;
        let tail = self.wal.tail();
        let head = self.wal.head();
        if head == tail {
            return Ok((Vec::new(), IoTiming::instant(t0)));
        }
        let first_page = tail / page;
        let end_page = head.div_ceil(page);
        let mut bytes = Vec::with_capacity(((end_page - first_page) * page) as usize);
        let mut t = t0;
        let mut p = first_page;
        while p < end_page {
            let slot = p % self.layout.wal_lbas;
            let run = (self.layout.wal_lbas - slot).min(end_page - p).min(128);
            let (c, data) = self
                .device
                .lock()
                .unwrap()
                .read(self.layout.wal_lba + slot, run, t)?;
            t = t.max(c.done_at);
            match data {
                Some(d) => bytes.extend_from_slice(&d),
                None => return Ok((Vec::new(), IoTiming::instant(t))),
            }
            p += run;
        }
        let start = (tail % page) as usize;
        let out = bytes[start..start + (head - tail) as usize].to_vec();
        // The sync_page tail rewrite means unsynced staged bytes may not
        // be on media yet; overlay the in-memory staged tail so a *live*
        // backend returns its true log (a recovered backend has no staged
        // bytes beyond what the scan found).
        Ok((
            out,
            IoTiming {
                done_at: t,
                cpu: self.cfg.costs.submit_enter(1),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimio_ftl::PlacementMode;
    use slimio_nvme::DeviceConfig;

    fn device() -> Arc<Mutex<NvmeDevice>> {
        Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig::tiny(
            PlacementMode::Fdp { max_pids: 8 },
        ))))
    }

    fn backend(dev: &Arc<Mutex<NvmeDevice>>) -> PassthruBackend {
        PassthruBackend::new(
            Arc::clone(dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
    }

    fn wal_record(seq: u64, payload_len: usize) -> Vec<u8> {
        let rec = walcodec::WalRecord::Set {
            seq,
            key: format!("key-{seq}").into_bytes(),
            value: vec![seq as u8; payload_len],
        };
        let mut buf = Vec::new();
        walcodec::encode(&rec, &mut buf);
        buf
    }

    #[test]
    fn wal_append_sync_load_roundtrip() {
        let dev = device();
        let mut b = backend(&dev);
        let mut expect = Vec::new();
        for seq in 1..=20u64 {
            let r = wal_record(seq, 500);
            expect.extend_from_slice(&r);
            b.wal_append(&r, SimTime::ZERO).unwrap();
        }
        b.wal_sync(SimTime::ZERO).unwrap();
        let (wal, _) = b.load_wal(SimTime::ZERO).unwrap();
        assert_eq!(wal, expect);
        let recs = walcodec::replay(&wal);
        assert_eq!(recs.len(), 20);
    }

    #[test]
    fn multi_page_append_coalesces_into_fewer_write_commands() {
        let dev = device();
        let mut b = backend(&dev);
        // A ~16-page record: unarmed, contiguous LBAs coalesce into far
        // fewer device write commands than pages.
        let rec = wal_record(1, 16 * LBA_BYTES);
        let pages = rec.len().div_ceil(LBA_BYTES) as u64;
        let before = dev.lock().unwrap().write_commands();
        b.wal_append(&rec, SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        let coalesced = dev.lock().unwrap().write_commands() - before;
        assert!(
            coalesced < pages,
            "expected < {pages} write commands, saw {coalesced}"
        );
        // Contents still replay byte-for-byte.
        let (wal, _) = b.load_wal(SimTime::ZERO).unwrap();
        assert_eq!(wal, rec);

        // Armed: the fault path keeps one command per page so plan
        // offsets stay meaningful.
        dev.lock()
            .unwrap()
            .arm_fault("fail@100000".parse().unwrap());
        let rec2 = wal_record(2, 8 * LBA_BYTES);
        let before = dev.lock().unwrap().write_commands();
        b.wal_append(&rec2, SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        let armed = dev.lock().unwrap().write_commands() - before;
        // At least one command per full payload page (coalescing would
        // have folded these into one or two).
        assert!(
            armed >= 8,
            "armed path should stay per-page (saw {armed} commands)"
        );
    }

    #[test]
    fn snapshot_commit_promotes_reserve_slot() {
        let dev = device();
        let mut b = backend(&dev);
        let r0 = b.slot_table().reserve();
        b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        b.snapshot_chunk(&vec![0xCD; 10_000], SimTime::ZERO)
            .unwrap();
        b.snapshot_commit(SimTime::ZERO).unwrap();
        assert_ne!(b.slot_table().reserve(), r0);
        let (data, _) = b
            .load_snapshot(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        assert_eq!(data.unwrap(), vec![0xCD; 10_000]);
        // The WAL-snapshot slot is still empty.
        let (none, _) = b
            .load_snapshot(SnapshotKind::WalSnapshot, SimTime::ZERO)
            .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn wal_snapshot_truncates_wal() {
        let dev = device();
        let mut b = backend(&dev);
        b.wal_append(&wal_record(1, 3000), SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        b.snapshot_begin(SnapshotKind::WalSnapshot, SimTime::ZERO)
            .unwrap();
        // Records arriving during the snapshot belong to the new tail.
        let post = wal_record(2, 100);
        b.wal_append(&post, SimTime::ZERO).unwrap();
        b.snapshot_chunk(b"snapshot-bytes", SimTime::ZERO).unwrap();
        b.snapshot_commit(SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        let (wal, _) = b.load_wal(SimTime::ZERO).unwrap();
        assert_eq!(wal, post);
    }

    #[test]
    fn abort_leaves_previous_snapshot() {
        let dev = device();
        let mut b = backend(&dev);
        b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        b.snapshot_chunk(b"v1", SimTime::ZERO).unwrap();
        b.snapshot_commit(SimTime::ZERO).unwrap();
        b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        b.snapshot_chunk(&vec![9u8; 5000], SimTime::ZERO).unwrap();
        b.snapshot_abort(SimTime::ZERO).unwrap();
        let (data, _) = b
            .load_snapshot(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        assert_eq!(data.unwrap(), b"v1");
    }

    #[test]
    fn recovery_restores_slots_and_wal() {
        let dev = device();
        {
            let mut b = backend(&dev);
            for seq in 1..=5u64 {
                b.wal_append(&wal_record(seq, 2000), SimTime::ZERO).unwrap();
            }
            b.wal_sync(SimTime::ZERO).unwrap();
            b.snapshot_begin(SnapshotKind::WalSnapshot, SimTime::ZERO)
                .unwrap();
            b.snapshot_chunk(&vec![0xAB; 9000], SimTime::ZERO).unwrap();
            b.snapshot_commit(SimTime::ZERO).unwrap();
            for seq in 6..=8u64 {
                b.wal_append(&wal_record(seq, 100), SimTime::ZERO).unwrap();
            }
            b.wal_sync(SimTime::ZERO).unwrap();
        } // drop = crash (rings drained on drop; device retains NAND state)
        let mut r = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();
        let (snap, _) = r
            .load_snapshot(SnapshotKind::WalSnapshot, SimTime::ZERO)
            .unwrap();
        assert_eq!(snap.unwrap(), vec![0xAB; 9000]);
        let (wal, _) = r.load_wal(SimTime::ZERO).unwrap();
        let recs = walcodec::replay(&wal);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq(), 6);
        assert_eq!(recs[2].seq(), 8);
    }

    #[test]
    fn recovery_with_unsynced_tail_loses_only_tail() {
        let dev = device();
        {
            let mut b = backend(&dev);
            b.wal_append(&wal_record(1, 1000), SimTime::ZERO).unwrap();
            b.wal_sync(SimTime::ZERO).unwrap();
            // Unsynced: staged partial page never hits the device.
            b.wal_append(&wal_record(2, 50), SimTime::ZERO).unwrap();
        }
        let mut r = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();
        let (wal, _) = r.load_wal(SimTime::ZERO).unwrap();
        let recs = walcodec::replay(&wal);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq(), 1);
    }

    #[test]
    fn crash_mid_snapshot_preserves_previous_snapshot() {
        // Crash after the new snapshot's data is written but before its
        // metadata commit: recovery must come up on the previous epoch,
        // whose slot was deliberately not yet deallocated (§4.2).
        let dev = device();
        {
            let mut b = backend(&dev);
            b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
                .unwrap();
            b.snapshot_chunk(b"epoch-1", SimTime::ZERO).unwrap();
            b.snapshot_commit(SimTime::ZERO).unwrap();
            b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
                .unwrap();
            b.snapshot_chunk(&vec![0x77u8; 20_000], SimTime::ZERO)
                .unwrap();
            // No commit — power cut here.
        }
        let mut r = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();
        let (snap, _) = r
            .load_snapshot(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        assert_eq!(snap.unwrap(), b"epoch-1");
        // And the next snapshot still works (reserve slot reusable).
        r.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        r.snapshot_chunk(b"epoch-2", SimTime::ZERO).unwrap();
        r.snapshot_commit(SimTime::ZERO).unwrap();
        let (snap, _) = r
            .load_snapshot(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        assert_eq!(snap.unwrap(), b"epoch-2");
    }

    #[test]
    fn transient_write_faults_are_retried_through_the_rings() {
        let dev = device();
        let mut b = backend(&dev);
        b.wal_append(&wal_record(1, 3000), SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        // Fail a window of writes: the completion handler re-drives each
        // failed page, so the append/sync still succeed and no WAL hole
        // (which replay would truncate at) is left behind.
        dev.lock().unwrap().arm_fault("fail@1x3".parse().unwrap());
        b.wal_append(&wal_record(2, 3000), SimTime::ZERO).unwrap();
        b.wal_sync(SimTime::ZERO).unwrap();
        dev.lock().unwrap().disarm_fault();
        let (wal, _) = b.load_wal(SimTime::ZERO).unwrap();
        assert_eq!(walcodec::replay(&wal).len(), 2);
    }

    #[test]
    fn power_cut_surfaces_and_recovery_sees_synced_prefix() {
        let dev = device();
        {
            let mut b = backend(&dev);
            b.wal_append(&wal_record(1, 1000), SimTime::ZERO).unwrap();
            b.wal_sync(SimTime::ZERO).unwrap();
            dev.lock().unwrap().arm_fault("pc@1".parse().unwrap());
            b.wal_append(&wal_record(2, 1000), SimTime::ZERO).unwrap();
            assert!(
                b.wal_sync(SimTime::ZERO).is_err(),
                "sync must surface the cut"
            );
        }
        dev.lock().unwrap().power_on();
        let mut r = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();
        let (wal, _) = r.load_wal(SimTime::ZERO).unwrap();
        let recs = walcodec::replay(&wal);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq(), 1);
    }

    #[test]
    fn fdp_waf_stays_one_across_generations() {
        let dev = device();
        let mut b = backend(&dev);
        // Several WAL-snapshot generations with interleaved WAL traffic.
        let mut seq = 0u64;
        for _ in 0..4 {
            for _ in 0..10 {
                seq += 1;
                b.wal_append(&wal_record(seq, 3000), SimTime::ZERO).unwrap();
            }
            b.wal_sync(SimTime::ZERO).unwrap();
            b.snapshot_begin(SnapshotKind::WalSnapshot, SimTime::ZERO)
                .unwrap();
            b.snapshot_chunk(&vec![1u8; 40_000], SimTime::ZERO).unwrap();
            b.snapshot_commit(SimTime::ZERO).unwrap();
        }
        assert!((b.waf() - 1.0).abs() < 1e-12, "WAF {}", b.waf());
    }

    #[test]
    fn snapshot_overflow_is_rejected() {
        let dev = device();
        let mut b = backend(&dev);
        let slot_bytes = b.layout().slot_bytes();
        b.snapshot_begin(SnapshotKind::OnDemand, SimTime::ZERO)
            .unwrap();
        let chunk = vec![0u8; 64 * 1024];
        let mut written = 0u64;
        let mut overflowed = false;
        while written <= slot_bytes + chunk.len() as u64 {
            match b.snapshot_chunk(&chunk, SimTime::ZERO) {
                Ok(_) => written += chunk.len() as u64,
                Err(BackendError::Snapshot(msg)) => {
                    assert!(msg.contains("slot capacity"), "{msg}");
                    overflowed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(overflowed);
    }
}
