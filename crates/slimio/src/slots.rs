//! The three-slot snapshot region state machine (§4.2).
//!
//! Since WAL-snapshots and on-demand snapshots cannot run concurrently and
//! at most one of each exists, three physical slots suffice: one holds the
//! current WAL-Snapshot, one the current On-Demand-Snapshot, and one is
//! the Reserve. Every new snapshot — of either kind — is written into the
//! Reserve slot; on success the Reserve slot is *promoted* to the
//! snapshot's role and the slot previously holding that role is demoted to
//! Reserve (and its LBAs deallocated). A failure at any point leaves the
//! previous snapshot untouched.

/// Role a slot currently plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SlotRole {
    /// Holds the current WAL-snapshot.
    WalSnapshot = 0,
    /// Holds the current on-demand snapshot.
    OnDemand = 1,
    /// Empty; target of the next snapshot write.
    Reserve = 2,
}

impl SlotRole {
    /// Parses the on-media role byte.
    pub fn from_u8(v: u8) -> Option<SlotRole> {
        match v {
            0 => Some(SlotRole::WalSnapshot),
            1 => Some(SlotRole::OnDemand),
            2 => Some(SlotRole::Reserve),
            _ => None,
        }
    }
}

/// In-memory slot table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotTable {
    roles: [SlotRole; 3],
    len: [u64; 3],
}

impl Default for SlotTable {
    fn default() -> Self {
        SlotTable {
            roles: [SlotRole::WalSnapshot, SlotRole::OnDemand, SlotRole::Reserve],
            len: [0; 3],
        }
    }
}

impl SlotTable {
    /// Builds a table from persisted metadata.
    pub fn from_meta(roles: [SlotRole; 3], len: [u64; 3]) -> SlotTable {
        SlotTable { roles, len }
    }

    /// Current roles (for metadata serialization).
    pub fn roles(&self) -> [SlotRole; 3] {
        self.roles
    }

    /// Current lengths (for metadata serialization).
    pub fn lens(&self) -> [u64; 3] {
        self.len
    }

    /// Index of the slot holding `role`.
    pub fn slot_of(&self, role: SlotRole) -> usize {
        self.roles
            .iter()
            .position(|&r| r == role)
            .expect("table always has one slot per role")
    }

    /// The Reserve slot index — where the next snapshot writes.
    pub fn reserve(&self) -> usize {
        self.slot_of(SlotRole::Reserve)
    }

    /// Committed byte length of the snapshot holding `role`
    /// (0 = no snapshot of that kind yet).
    pub fn len_of(&self, role: SlotRole) -> u64 {
        self.len[self.slot_of(role)]
    }

    /// Commits a snapshot of `role` that was written into the Reserve
    /// slot: promotes Reserve → `role`, demotes the old `role` slot →
    /// Reserve. Returns `(promoted_slot, demoted_slot)`; the demoted
    /// slot's LBAs should be deallocated by the caller *after* the
    /// metadata commit lands.
    ///
    /// # Panics
    /// Panics if `role` is [`SlotRole::Reserve`].
    pub fn promote(&mut self, role: SlotRole, stream_len: u64) -> (usize, usize) {
        assert_ne!(role, SlotRole::Reserve, "cannot promote to Reserve");
        let reserve = self.reserve();
        let old = self.slot_of(role);
        self.roles[reserve] = role;
        self.len[reserve] = stream_len;
        self.roles[old] = SlotRole::Reserve;
        self.len[old] = 0;
        (reserve, old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_has_one_slot_per_role() {
        let t = SlotTable::default();
        assert_eq!(t.slot_of(SlotRole::WalSnapshot), 0);
        assert_eq!(t.slot_of(SlotRole::OnDemand), 1);
        assert_eq!(t.reserve(), 2);
    }

    #[test]
    fn promote_rotates_reserve() {
        let mut t = SlotTable::default();
        // First WAL-snapshot goes into slot 2 (reserve), slot 0 demotes.
        let (promoted, demoted) = t.promote(SlotRole::WalSnapshot, 1000);
        assert_eq!((promoted, demoted), (2, 0));
        assert_eq!(t.slot_of(SlotRole::WalSnapshot), 2);
        assert_eq!(t.reserve(), 0);
        assert_eq!(t.len_of(SlotRole::WalSnapshot), 1000);
        // Second WAL-snapshot: reserve is 0, old is 2.
        let (p2, d2) = t.promote(SlotRole::WalSnapshot, 2000);
        assert_eq!((p2, d2), (0, 2));
        assert_eq!(t.len_of(SlotRole::WalSnapshot), 2000);
        // The on-demand slot was never disturbed.
        assert_eq!(t.slot_of(SlotRole::OnDemand), 1);
    }

    #[test]
    fn alternating_kinds_never_collide() {
        let mut t = SlotTable::default();
        for i in 1..=10u64 {
            let role = if i % 2 == 0 {
                SlotRole::WalSnapshot
            } else {
                SlotRole::OnDemand
            };
            t.promote(role, i * 100);
            // Invariant: exactly one slot per role.
            let mut seen = [0; 3];
            for r in t.roles() {
                seen[r as usize] += 1;
            }
            assert_eq!(seen, [1, 1, 1]);
        }
    }

    #[test]
    fn from_meta_restores_state() {
        let roles = [SlotRole::Reserve, SlotRole::WalSnapshot, SlotRole::OnDemand];
        let t = SlotTable::from_meta(roles, [0, 42, 77]);
        assert_eq!(t.reserve(), 0);
        assert_eq!(t.len_of(SlotRole::WalSnapshot), 42);
        assert_eq!(t.len_of(SlotRole::OnDemand), 77);
    }

    #[test]
    #[should_panic(expected = "cannot promote")]
    fn promoting_reserve_panics() {
        SlotTable::default().promote(SlotRole::Reserve, 1);
    }

    #[test]
    fn role_byte_roundtrip() {
        for r in [SlotRole::WalSnapshot, SlotRole::OnDemand, SlotRole::Reserve] {
            assert_eq!(SlotRole::from_u8(r as u8), Some(r));
        }
        assert_eq!(SlotRole::from_u8(9), None);
    }
}
