//! Batched sequential reads for recovery (§5.3).
//!
//! Redis recovery is a sequential scan of the snapshot followed by the WAL
//! tail. The baseline pays a syscall per `read()` and rides the page
//! cache; SlimIO issues large batched passthru reads into a read-ahead
//! buffer, eliminating per-read syscalls entirely. Table 5 reports the
//! resulting ~20 % recovery-time win; the system model charges exactly the
//! costs this module exposes.

use std::sync::Arc;

use slimio_des::SimTime;
use slimio_nvme::{DeviceError, NvmeDevice, LBA_BYTES};
use std::sync::Mutex;

/// Streams a contiguous LBA range with large batched reads.
pub struct RecoveryReader {
    device: Arc<Mutex<NvmeDevice>>,
    /// Pages fetched per device round trip.
    pub batch_pages: u64,
}

impl RecoveryReader {
    /// Creates a reader with the default 128-page (512 KiB) batch.
    pub fn new(device: Arc<Mutex<NvmeDevice>>) -> Self {
        RecoveryReader {
            device,
            batch_pages: 128,
        }
    }

    /// Reads `len_bytes` starting at `lba`, returning the data (when the
    /// device stores payloads) and the completion time.
    pub fn read_stream(
        &self,
        lba: u64,
        len_bytes: u64,
        now: SimTime,
    ) -> Result<(Option<Vec<u8>>, SimTime), DeviceError> {
        let pages = len_bytes.div_ceil(LBA_BYTES as u64);
        let mut out: Option<Vec<u8>> = None;
        let mut t = now;
        let mut p = 0u64;
        while p < pages {
            let n = self.batch_pages.min(pages - p);
            let (c, data) = self.device.lock().unwrap().read(lba + p, n, t)?;
            t = t.max(c.done_at);
            if let Some(d) = data {
                out.get_or_insert_with(Vec::new).extend_from_slice(&d);
            }
            p += n;
        }
        if let Some(o) = out.as_mut() {
            o.truncate(len_bytes as usize);
        }
        Ok((out, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimio_ftl::PlacementMode;
    use slimio_nvme::DeviceConfig;

    fn device_with_data(pages: u64) -> Arc<Mutex<NvmeDevice>> {
        let dev = Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig::tiny(
            PlacementMode::Conventional,
        ))));
        {
            let mut d = dev.lock().unwrap();
            for p in 0..pages {
                let fill = vec![(p % 251) as u8; LBA_BYTES];
                d.write(p, 1, 0, Some(&fill), SimTime::ZERO).unwrap();
            }
        }
        dev
    }

    #[test]
    fn reads_back_exact_bytes() {
        let dev = device_with_data(10);
        let r = RecoveryReader::new(Arc::clone(&dev));
        let (data, _) = r
            .read_stream(0, 10 * LBA_BYTES as u64, SimTime::ZERO)
            .unwrap();
        let data = data.unwrap();
        assert_eq!(data.len(), 10 * LBA_BYTES);
        for p in 0..10u64 {
            assert!(data[p as usize * LBA_BYTES..(p as usize + 1) * LBA_BYTES]
                .iter()
                .all(|&b| b == (p % 251) as u8));
        }
    }

    #[test]
    fn truncates_to_requested_length() {
        let dev = device_with_data(3);
        let r = RecoveryReader::new(dev);
        let (data, _) = r.read_stream(0, 5000, SimTime::ZERO).unwrap();
        assert_eq!(data.unwrap().len(), 5000);
    }

    #[test]
    fn batching_reduces_round_trips() {
        // Same data, two batch sizes: the larger batch must not be slower
        // (it exploits die parallelism within one submission wave).
        let dev = device_with_data(64);
        let mut small = RecoveryReader::new(Arc::clone(&dev));
        small.batch_pages = 1;
        let (_, t_small) = small
            .read_stream(0, 64 * LBA_BYTES as u64, SimTime::ZERO)
            .unwrap();

        let dev2 = device_with_data(64);
        let mut big = RecoveryReader::new(dev2);
        big.batch_pages = 64;
        let (_, t_big) = big
            .read_stream(0, 64 * LBA_BYTES as u64, SimTime::ZERO)
            .unwrap();
        assert!(t_big < t_small, "batched {t_big} vs serial {t_small}");
    }

    #[test]
    fn zero_length_read_is_instant() {
        let dev = device_with_data(1);
        let r = RecoveryReader::new(dev);
        let (data, t) = r.read_stream(0, 0, SimTime::ZERO).unwrap();
        assert!(data.is_none());
        assert_eq!(t, SimTime::ZERO);
    }
}
