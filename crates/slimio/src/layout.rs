//! LBA space partitioning (§4.2).
//!
//! Bypassing the file system means SlimIO must manage the LBA space
//! itself. Fortunately IMDB persistence is sequential, so a static
//! partition suffices:
//!
//! ```text
//! ┌──────────┬──────────────────────────┬────────┬────────┬────────┐
//! │ Metadata │        WAL Region        │ Slot 0 │ Slot 1 │ Slot 2 │
//! │ (2 LBAs) │     (circular log)       │        │        │        │
//! └──────────┴──────────────────────────┴────────┴────────┴────────┘
//! ```
//!
//! The three equally-sized snapshot slots rotate between the roles
//! WAL-Snapshot / On-Demand / Reserve (see [`crate::slots`]).

use slimio_nvme::LBA_BYTES;

/// Number of metadata LBAs (two alternating pages, see
/// [`crate::metadata::pick_newest`]).
pub const META_LBAS: u64 = 2;

/// The static partition of the device's logical space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// First LBA of the metadata region (0 for a whole-device layout;
    /// the sub-range base for a shard layout).
    pub meta_lba: u64,
    /// First LBA of the WAL region.
    pub wal_lba: u64,
    /// WAL region size in LBAs.
    pub wal_lbas: u64,
    /// First LBA of the snapshot region (slot 0).
    pub slots_lba: u64,
    /// Size of each of the three slots, in LBAs.
    pub slot_lbas: u64,
}

impl Layout {
    /// Partitions a device of `capacity_lbas`: metadata, then `wal_frac`
    /// of the remainder for the WAL region, then three equal slots.
    ///
    /// # Panics
    /// Panics if the device is too small to hold a meaningful layout
    /// (< 32 LBAs) or `wal_frac` is not within (0, 1).
    pub fn partition(capacity_lbas: u64, wal_frac: f64) -> Layout {
        Layout::partition_at(0, capacity_lbas, wal_frac)
    }

    /// Like [`Layout::partition`], but laid out inside the LBA range
    /// `[base_lba, base_lba + capacity_lbas)`. A sharded write path gives
    /// every shard its own self-similar sub-layout (metadata, WAL region,
    /// three slots) carved from a disjoint slice of the device.
    pub fn partition_at(base_lba: u64, capacity_lbas: u64, wal_frac: f64) -> Layout {
        assert!(
            capacity_lbas >= 32,
            "device too small: {capacity_lbas} LBAs"
        );
        assert!(
            wal_frac > 0.0 && wal_frac < 1.0,
            "wal_frac must be in (0,1), got {wal_frac}"
        );
        let usable = capacity_lbas - META_LBAS;
        let wal_lbas = ((usable as f64 * wal_frac) as u64).max(8);
        let slot_lbas = (usable - wal_lbas) / 3;
        assert!(slot_lbas >= 2, "slots too small; shrink wal_frac");
        Layout {
            meta_lba: base_lba,
            wal_lba: base_lba + META_LBAS,
            wal_lbas,
            slots_lba: base_lba + META_LBAS + wal_lbas,
            slot_lbas,
        }
    }

    /// Default split: 40 % WAL region, 3 × 20 % slots. The paper's
    /// workloads rotate the WAL at 50–55 GB on a 180 GB device, and each
    /// snapshot is ~20 GB, so slots comfortably hold one snapshot each.
    pub fn default_for(capacity_lbas: u64) -> Layout {
        Layout::partition(capacity_lbas, 0.40)
    }

    /// First LBA of slot `i` (0..3).
    pub fn slot_lba(&self, i: usize) -> u64 {
        debug_assert!(i < 3);
        self.slots_lba + i as u64 * self.slot_lbas
    }

    /// Capacity of one slot in bytes.
    pub fn slot_bytes(&self) -> u64 {
        self.slot_lbas * LBA_BYTES as u64
    }

    /// Capacity of the WAL region in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_lbas * LBA_BYTES as u64
    }

    /// Total LBAs covered by the layout.
    pub fn end_lba(&self) -> u64 {
        self.slot_lba(2) + self.slot_lbas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_device_without_overlap() {
        let l = Layout::default_for(10_000);
        assert_eq!(l.meta_lba, 0);
        assert_eq!(l.wal_lba, META_LBAS);
        assert_eq!(l.slots_lba, l.wal_lba + l.wal_lbas);
        assert_eq!(l.slot_lba(1), l.slot_lba(0) + l.slot_lbas);
        assert_eq!(l.slot_lba(2), l.slot_lba(1) + l.slot_lbas);
        assert!(l.end_lba() <= 10_000);
        // At most 2 LBAs of rounding slack.
        assert!(10_000 - l.end_lba() <= 4);
    }

    #[test]
    fn wal_fraction_respected() {
        let l = Layout::partition(100_000, 0.5);
        let frac = l.wal_lbas as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01);
    }

    #[test]
    fn byte_accessors() {
        let l = Layout::partition(1_000, 0.4);
        assert_eq!(l.wal_bytes(), l.wal_lbas * 4096);
        assert_eq!(l.slot_bytes(), l.slot_lbas * 4096);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_device_rejected() {
        Layout::partition(16, 0.4);
    }

    #[test]
    #[should_panic(expected = "wal_frac")]
    fn bad_fraction_rejected() {
        Layout::partition(1_000, 1.5);
    }

    #[test]
    fn partition_at_offsets_every_region() {
        let base = Layout::partition(10_000, 0.4);
        let offset = Layout::partition_at(50_000, 10_000, 0.4);
        assert_eq!(offset.meta_lba, 50_000);
        assert_eq!(offset.wal_lba, base.wal_lba + 50_000);
        assert_eq!(offset.slots_lba, base.slots_lba + 50_000);
        assert_eq!(offset.wal_lbas, base.wal_lbas);
        assert_eq!(offset.slot_lbas, base.slot_lbas);
        assert_eq!(offset.end_lba(), base.end_lba() + 50_000);
        // Adjacent shard sub-ranges never overlap.
        let a = Layout::partition_at(0, 5_000, 0.4);
        let b = Layout::partition_at(5_000, 5_000, 0.4);
        assert!(a.end_lba() <= 5_000);
        assert!(b.meta_lba >= 5_000);
    }

    #[test]
    fn paper_scale_layout() {
        // 180 GB device → 45M 4 KiB LBAs.
        let capacity = 180u64 * 1_000_000_000 / 4096;
        let l = Layout::default_for(capacity);
        // Slots must hold a 20 GB snapshot.
        assert!(l.slot_bytes() > 20_000_000_000);
        // WAL region must hold the 50–55 GB rotation threshold.
        assert!(l.wal_bytes() > 55_000_000_000);
    }
}
