//! **SlimIO** — a lightweight I/O path with write isolation for FDP-backed
//! in-memory databases.
//!
//! This crate is the paper's contribution (§4): instead of sending WAL and
//! snapshot traffic through the kernel file-system path, the database
//! writes raw LBA ranges through per-path io_uring passthru rings, tagging
//! each stream with an FDP Placement ID so the SSD never mixes lifetimes.
//!
//! Components, mapping 1:1 onto the design sections:
//!
//! * **Snapshot–WAL separation via I/O passthru** (§4.1):
//!   [`PassthruBackend`] owns a *WAL-Path* ring (used by the main process;
//!   completions handled on demand) and a *Snapshot-Path* ring (SQPOLL
//!   mode — a kernel-thread emulation polls the SQ, so the snapshot
//!   process submits without any syscall). Redis's logging policy and
//!   snapshot format are preserved unchanged — this crate plugs into the
//!   `slimio-imdb` engine through the same [`PersistBackend`] seam the
//!   baseline file backend uses.
//! * **LBA space management** (§4.2): [`layout::Layout`] partitions the
//!   device into a Metadata Region, a WAL Region (a circular byte log,
//!   [`wal_log::WalLog`]), and a Snapshot Region of three slots managed by
//!   [`slots::SlotTable`] — WAL-Snapshot, On-Demand-Snapshot, and a
//!   Reserve slot. New snapshots always land in the Reserve slot; commit
//!   promotes it and demotes the superseded slot to Reserve.
//! * **Crash consistency** (§4.2): [`metadata::MetaRecord`] is written
//!   alternately to two metadata pages with an epoch and CRC; recovery
//!   loads the newest valid record ([`metadata::pick_newest`]), so
//!   a crash at *any* point leaves either the old or the new state fully
//!   intact — never a mix.
//! * **Recovery** (§4.2, Table 5): [`readahead::RecoveryReader`] streams a
//!   committed snapshot with large batched passthru reads (the read-ahead
//!   buffer that beats the baseline's page-cache path).
//! * **FDP placement** (§4.3): every write carries its stream's PID
//!   ([`pids`]), so WAL generations, WAL-snapshots, and on-demand
//!   snapshots occupy disjoint Reclaim Units and deallocations free whole
//!   RUs — WAF 1.00.

#![warn(missing_docs)]

pub mod backend;
pub mod layout;
pub mod metadata;
pub mod readahead;
pub mod slots;
pub mod wal_log;

pub use backend::{PassthruBackend, PassthruConfig};
pub use layout::Layout;
pub use slimio_imdb::backend::PersistBackend;

/// FDP Placement ID assignment (§4.3): data with different lifetimes gets
/// different PIDs so the device groups it into distinct Reclaim Units.
pub mod pids {
    use slimio_ftl::Pid;

    /// Metadata region writes (tiny, overwritten in place).
    pub const META: Pid = 0;
    /// WAL appends — the shortest-lived stream.
    pub const WAL: Pid = 1;
    /// WAL-snapshots — invalidated by the next WAL-snapshot.
    pub const WAL_SNAPSHOT: Pid = 2;
    /// On-demand snapshots — long-lived backups.
    pub const ON_DEMAND: Pid = 3;

    /// The placement streams one backend instance writes with.
    ///
    /// A sharded write path runs one [`crate::PassthruBackend`] per shard;
    /// each shard's three data streams (WAL, WAL-snapshot, on-demand) get
    /// their own PIDs so no two shards ever share a Reclaim Unit — the
    /// paper's WAL-vs-snapshot isolation extended to WAL-vs-WAL. The
    /// metadata stream stays shared: its pages fully invalidate on every
    /// meta commit, so mixing shards there cannot create GC copy traffic.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct PidSet {
        /// Metadata region writes.
        pub meta: Pid,
        /// WAL appends.
        pub wal: Pid,
        /// WAL-snapshot writes.
        pub wal_snapshot: Pid,
        /// On-demand snapshot writes.
        pub on_demand: Pid,
    }

    impl PidSet {
        /// The PIDs for writer shard `shard`. Shard 0 gets exactly the
        /// classic [`META`]/[`WAL`]/[`WAL_SNAPSHOT`]/[`ON_DEMAND`]
        /// assignment, so the single-shard device traffic is unchanged.
        pub fn for_shard(shard: usize) -> PidSet {
            let base = 3 * shard as Pid;
            PidSet {
                meta: META,
                wal: WAL + base,
                wal_snapshot: WAL_SNAPSHOT + base,
                on_demand: ON_DEMAND + base,
            }
        }

        /// PIDs a device must support for `shards` writer shards.
        pub fn device_pids(shards: usize) -> u8 {
            (1 + 3 * shards as u16).max(8).min(u8::MAX as u16) as u8
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn shard0_matches_classic_constants() {
            let p = PidSet::for_shard(0);
            assert_eq!((p.meta, p.wal, p.wal_snapshot, p.on_demand), (0, 1, 2, 3));
        }

        #[test]
        fn shards_never_share_data_pids() {
            let mut seen = std::collections::HashSet::new();
            for s in 0..8 {
                let p = PidSet::for_shard(s);
                for pid in [p.wal, p.wal_snapshot, p.on_demand] {
                    assert!(seen.insert(pid), "pid {pid} reused by shard {s}");
                    assert_ne!(pid, META);
                }
            }
            assert!(PidSet::device_pids(4) >= 13);
            assert_eq!(PidSet::device_pids(1), 8);
        }
    }
}
