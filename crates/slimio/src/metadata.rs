//! Crash-safe metadata records (§4.2).
//!
//! All LBA-space state — WAL positions, slot roles, snapshot lengths — is
//! recorded in the Metadata Region. Updates alternate between two pages
//! (A/B) with a monotonically increasing epoch and a CRC; recovery loads
//! both pages and adopts the valid record with the highest epoch. A crash
//! during a metadata write therefore leaves the previous record intact —
//! the commit is atomic at the record level.

use slimio_imdb::crc::crc32;
use slimio_nvme::LBA_BYTES;

use crate::slots::SlotRole;

/// Magic prefix of a metadata page.
pub const META_MAGIC: &[u8; 8] = b"SLIMMETA";

/// The persistent state of the LBA space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaRecord {
    /// Commit sequence number; highest valid record wins.
    pub epoch: u64,
    /// Byte offset of the oldest live WAL byte (monotonic, un-wrapped).
    pub wal_tail: u64,
    /// Role of each snapshot slot.
    pub roles: [SlotRole; 3],
    /// Committed stream length (bytes) of each slot; 0 when empty.
    pub slot_len: [u64; 3],
}

impl Default for MetaRecord {
    fn default() -> Self {
        MetaRecord {
            epoch: 0,
            wal_tail: 0,
            roles: [SlotRole::WalSnapshot, SlotRole::OnDemand, SlotRole::Reserve],
            slot_len: [0; 3],
        }
    }
}

impl MetaRecord {
    /// Serializes to one metadata page (4 KiB, zero-padded).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(LBA_BYTES);
        out.extend_from_slice(META_MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.wal_tail.to_le_bytes());
        for r in self.roles {
            out.push(r as u8);
        }
        for l in self.slot_len {
            out.extend_from_slice(&l.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out.resize(LBA_BYTES, 0);
        out
    }

    /// Parses a metadata page; `None` for anything invalid (bad magic,
    /// bad CRC, bad role byte) — invalid pages are simply ignored by
    /// recovery.
    pub fn decode(page: &[u8]) -> Option<MetaRecord> {
        if page.len() < 8 + 8 + 8 + 3 + 24 + 4 {
            return None;
        }
        if &page[..8] != META_MAGIC {
            return None;
        }
        let body_len = 8 + 8 + 8 + 3 + 24;
        let stored_crc = u32::from_le_bytes(page[body_len..body_len + 4].try_into().unwrap());
        if crc32(&page[..body_len]) != stored_crc {
            return None;
        }
        let epoch = u64::from_le_bytes(page[8..16].try_into().unwrap());
        let wal_tail = u64::from_le_bytes(page[16..24].try_into().unwrap());
        let mut roles = [SlotRole::Reserve; 3];
        for (i, role) in roles.iter_mut().enumerate() {
            *role = SlotRole::from_u8(page[24 + i])?;
        }
        let mut slot_len = [0u64; 3];
        for (i, len) in slot_len.iter_mut().enumerate() {
            let at = 27 + i * 8;
            *len = u64::from_le_bytes(page[at..at + 8].try_into().unwrap());
        }
        // A well-formed record has exactly one slot per role.
        let mut seen = [false; 3];
        for r in roles {
            let idx = r as usize;
            if seen[idx] {
                return None;
            }
            seen[idx] = true;
        }
        Some(MetaRecord {
            epoch,
            wal_tail,
            roles,
            slot_len,
        })
    }

    /// Which metadata LBA (0 or 1) this record's commit should target:
    /// epochs alternate pages so the previous record survives the write.
    pub fn target_lba(&self) -> u64 {
        self.epoch % 2
    }

    /// Index of the slot currently holding `role`.
    pub fn slot_with_role(&self, role: SlotRole) -> usize {
        self.roles
            .iter()
            .position(|&r| r == role)
            .expect("decode() guarantees one slot per role")
    }
}

/// Loads the newest valid record from the two metadata pages.
pub fn pick_newest(page_a: &[u8], page_b: &[u8]) -> Option<MetaRecord> {
    match (MetaRecord::decode(page_a), MetaRecord::decode(page_b)) {
        (Some(a), Some(b)) => Some(if a.epoch >= b.epoch { a } else { b }),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetaRecord {
        MetaRecord {
            epoch: 7,
            wal_tail: 123_456_789,
            roles: [SlotRole::Reserve, SlotRole::WalSnapshot, SlotRole::OnDemand],
            slot_len: [0, 999, 12_345],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = sample();
        let page = rec.encode();
        assert_eq!(page.len(), LBA_BYTES);
        assert_eq!(MetaRecord::decode(&page), Some(rec));
    }

    #[test]
    fn corruption_is_rejected() {
        let rec = sample();
        let page = rec.encode();
        for i in [0usize, 8, 20, 30, 50] {
            let mut bad = page.clone();
            bad[i] ^= 0x01;
            assert_eq!(MetaRecord::decode(&bad), None, "flip at {i} accepted");
        }
    }

    #[test]
    fn zero_page_is_rejected() {
        assert_eq!(MetaRecord::decode(&vec![0u8; LBA_BYTES]), None);
        assert_eq!(MetaRecord::decode(&[]), None);
    }

    #[test]
    fn duplicate_roles_rejected() {
        let mut rec = sample();
        rec.roles = [SlotRole::Reserve, SlotRole::Reserve, SlotRole::OnDemand];
        let page = rec.encode();
        assert_eq!(MetaRecord::decode(&page), None);
    }

    #[test]
    fn newest_epoch_wins() {
        let mut old = sample();
        old.epoch = 5;
        let mut new = sample();
        new.epoch = 6;
        assert_eq!(pick_newest(&old.encode(), &new.encode()).unwrap().epoch, 6);
        assert_eq!(pick_newest(&new.encode(), &old.encode()).unwrap().epoch, 6);
    }

    #[test]
    fn torn_newer_page_falls_back_to_older() {
        let mut old = sample();
        old.epoch = 5;
        let mut new = sample();
        new.epoch = 6;
        let mut torn = new.encode();
        torn[20] ^= 0xFF; // corrupt the newer record inside the CRC'd body
        let picked = pick_newest(&old.encode(), &torn).unwrap();
        assert_eq!(picked.epoch, 5);
    }

    #[test]
    fn epochs_alternate_target_pages() {
        let mut rec = sample();
        rec.epoch = 4;
        assert_eq!(rec.target_lba(), 0);
        rec.epoch = 5;
        assert_eq!(rec.target_lba(), 1);
    }

    #[test]
    fn slot_with_role_lookup() {
        let rec = sample();
        assert_eq!(rec.slot_with_role(SlotRole::Reserve), 0);
        assert_eq!(rec.slot_with_role(SlotRole::WalSnapshot), 1);
        assert_eq!(rec.slot_with_role(SlotRole::OnDemand), 2);
    }
}
