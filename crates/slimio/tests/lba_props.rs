//! Randomized tests for the LBA space manager and crash recovery.
//!
//! Random scripts of WAL appends/syncs and snapshot begin/chunk/commit/
//! abort run against the passthru backend; at the end the backend is
//! dropped and recovered, and the §4.2 guarantees are checked: committed
//! snapshots intact, synced WAL prefix intact, sequence numbers monotone,
//! never a torn mix of generations. Scripts come from the workspace's
//! deterministic PRNG so every case reproduces from its seed.

use std::sync::Arc;
use std::sync::Mutex;

use slimio::wal_log::WalLog;
use slimio::{PassthruBackend, PassthruConfig};
use slimio_des::{SimTime, Xoshiro256};
use slimio_ftl::PlacementMode;
use slimio_imdb::backend::{PersistBackend, SnapshotKind};
use slimio_imdb::wal::{encode, replay, WalRecord};
use slimio_nvme::{DeviceConfig, NvmeDevice};
use slimio_uring::SharedClock;

#[derive(Clone, Debug)]
enum Op {
    Append(u16),
    Sync,
    SnapBegin(bool),
    SnapChunk(u16),
    SnapCommit,
    SnapAbort,
}

fn gen_op(rng: &mut Xoshiro256) -> Op {
    // Weights mirror the original strategy: 5 append : 3 sync : 1 begin :
    // 3 chunk : 1 commit : 1 abort.
    match rng.gen_range(14) {
        0..=4 => Op::Append(1 + rng.gen_range(1999) as u16),
        5..=7 => Op::Sync,
        8 => Op::SnapBegin(rng.gen_range(2) == 0),
        9..=11 => Op::SnapChunk(1 + rng.gen_range(4999) as u16),
        12 => Op::SnapCommit,
        _ => Op::SnapAbort,
    }
}

fn wal_record(seq: u64, len: u16) -> Vec<u8> {
    let mut buf = Vec::new();
    encode(
        &WalRecord::Set {
            seq,
            key: seq.to_be_bytes().to_vec(),
            value: vec![seq as u8; len as usize],
        },
        &mut buf,
    );
    buf
}

#[test]
fn random_script_crash_recovers_consistently() {
    let mut rng = Xoshiro256::new(0x1BA_5EED);
    for _case in 0..32 {
        let n = 1 + rng.gen_range(59) as usize;
        let ops: Vec<Op> = (0..n).map(|_| gen_op(&mut rng)).collect();

        let dev = Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig::tiny(
            PlacementMode::Fdp { max_pids: 8 },
        ))));
        let mut backend = PassthruBackend::new(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        );
        let t = SimTime::ZERO;
        let mut seq = 0u64;
        let mut synced: Vec<u64> = Vec::new();
        let mut unsynced: Vec<u64> = Vec::new();
        let mut snap_active = false;
        let mut pending_chunks: Vec<u8> = Vec::new();
        let mut pending_kind = SnapshotKind::OnDemand;
        let mut fork_seq = 0u64;
        let mut committed: std::collections::HashMap<SnapshotKind, Vec<u8>> =
            std::collections::HashMap::new();

        for op in &ops {
            match *op {
                Op::Append(len) => {
                    seq += 1;
                    if backend.wal_append(&wal_record(seq, len), t).is_ok() {
                        unsynced.push(seq);
                    } else {
                        seq -= 1; // region full; nothing appended
                    }
                }
                Op::Sync => {
                    backend.wal_sync(t).unwrap();
                    synced.append(&mut unsynced);
                }
                Op::SnapBegin(wal_kind) => {
                    let kind = if wal_kind {
                        SnapshotKind::WalSnapshot
                    } else {
                        SnapshotKind::OnDemand
                    };
                    if backend.snapshot_begin(kind, t).is_ok() {
                        snap_active = true;
                        pending_kind = kind;
                        pending_chunks.clear();
                        // Records at or below this sequence number are
                        // absorbed if (and only if) the snapshot commits.
                        fork_seq = seq;
                    }
                }
                Op::SnapChunk(len) => {
                    if snap_active {
                        let chunk = vec![0xC5u8; len as usize];
                        if backend.snapshot_chunk(&chunk, t).is_ok() {
                            pending_chunks.extend_from_slice(&chunk);
                        }
                    }
                }
                Op::SnapCommit => {
                    if snap_active {
                        backend.snapshot_commit(t).unwrap();
                        snap_active = false;
                        committed.insert(pending_kind, pending_chunks.clone());
                        if pending_kind == SnapshotKind::WalSnapshot {
                            // The snapshot absorbed every pre-fork record;
                            // the WAL tail advanced past them.
                            synced.retain(|s| *s > fork_seq);
                            unsynced.retain(|s| *s > fork_seq);
                        }
                    }
                }
                Op::SnapAbort => {
                    if snap_active {
                        backend.snapshot_abort(t).unwrap();
                        snap_active = false;
                    }
                }
            }
        }
        drop(backend); // crash

        let mut rec = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();

        // Committed snapshots are intact. (A zero-length commit is
        // indistinguishable from "no snapshot" — the engine never produces
        // one; the RDB format is never empty.)
        for (kind, bytes) in &committed {
            let (got, _) = rec.load_snapshot(*kind, t).unwrap();
            if bytes.is_empty() {
                assert!(got.is_none() || got.as_deref() == Some(&[][..]));
            } else {
                assert_eq!(
                    got.as_deref(),
                    Some(bytes.as_slice()),
                    "snapshot {kind:?} lost or corrupted"
                );
            }
        }

        // The synced WAL prefix of the live generation replays, in order.
        let (wal, _) = rec.load_wal(t).unwrap();
        let seqs: Vec<u64> = replay(&wal).iter().map(|r| r.seq()).collect();
        assert!(
            seqs.len() >= synced.len(),
            "synced records lost: got {seqs:?}, expected at least {synced:?}"
        );
        assert_eq!(&seqs[..synced.len()], synced.as_slice());
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "replay out of order: {seqs:?}");
        }
    }
}

#[test]
fn wal_log_append_truncate_invariants() {
    let mut rng = Xoshiro256::new(0x1BA_70C5);
    for _case in 0..32 {
        let n = 1 + rng.gen_range(199) as usize;
        let region_lbas = 64u64; // 256 KiB region
        let mut log = WalLog::new(10, region_lbas);
        for _ in 0..n {
            // 4 append : 1 truncate.
            if rng.gen_range(5) < 4 {
                let arg = 1 + rng.gen_range(8999);
                let before = log.head();
                match log.append(&vec![7u8; arg as usize]) {
                    Ok(pages) => {
                        assert_eq!(log.head(), before + arg);
                        for pw in &pages {
                            assert!(pw.lba >= 10 && pw.lba < 10 + region_lbas);
                            assert_eq!(pw.data.len(), 4096);
                        }
                    }
                    Err(_) => {
                        // Full: state unchanged.
                        assert_eq!(log.head(), before);
                    }
                }
            } else {
                let pct = rng.gen_range(100);
                let span = log.head() - log.tail();
                let new_tail = log.tail() + span * pct / 100;
                let dead = log.truncate_to(new_tail);
                for (lba, n) in dead {
                    assert!(lba >= 10 && lba + n <= 10 + region_lbas);
                    assert!(n >= 1);
                }
                assert_eq!(log.tail(), new_tail);
            }
            assert!(log.live_bytes() <= log.capacity());
            assert!(log.tail() <= log.head());
        }
    }
}
