//! Property tests for the LBA space manager and crash recovery.
//!
//! Random scripts of WAL appends/syncs and snapshot begin/chunk/commit/
//! abort run against the passthru backend; at a random crash point the
//! backend is dropped and recovered, and the §4.2 guarantees are checked:
//! committed snapshots intact, synced WAL prefix intact, sequence numbers
//! monotone, never a torn mix of generations.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;
use slimio::wal_log::WalLog;
use slimio::{PassthruBackend, PassthruConfig};
use slimio_des::SimTime;
use slimio_ftl::PlacementMode;
use slimio_imdb::backend::{PersistBackend, SnapshotKind};
use slimio_imdb::wal::{encode, replay, WalRecord};
use slimio_nvme::{DeviceConfig, NvmeDevice};
use slimio_uring::SharedClock;

#[derive(Clone, Debug)]
enum Op {
    Append(u16),
    Sync,
    SnapBegin(bool),
    SnapChunk(u16),
    SnapCommit,
    SnapAbort,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1u16..2000).prop_map(Op::Append),
        3 => Just(Op::Sync),
        1 => any::<bool>().prop_map(Op::SnapBegin),
        3 => (1u16..5000).prop_map(Op::SnapChunk),
        1 => Just(Op::SnapCommit),
        1 => Just(Op::SnapAbort),
    ]
}

fn wal_record(seq: u64, len: u16) -> Vec<u8> {
    let mut buf = Vec::new();
    encode(
        &WalRecord::Set {
            seq,
            key: seq.to_be_bytes().to_vec(),
            value: vec![seq as u8; len as usize],
        },
        &mut buf,
    );
    buf
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_script_crash_recovers_consistently(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let dev = Arc::new(Mutex::new(NvmeDevice::new(DeviceConfig::tiny(
            PlacementMode::Fdp { max_pids: 8 },
        ))));
        let mut backend = PassthruBackend::new(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        );
        let t = SimTime::ZERO;
        let mut seq = 0u64;
        let mut synced: Vec<u64> = Vec::new();
        let mut unsynced: Vec<u64> = Vec::new();
        let mut snap_active = false;
        let mut pending_chunks: Vec<u8> = Vec::new();
        let mut pending_kind = SnapshotKind::OnDemand;
        let mut fork_seq = 0u64;
        let mut committed: std::collections::HashMap<SnapshotKind, Vec<u8>> =
            std::collections::HashMap::new();

        for op in &ops {
            match *op {
                Op::Append(len) => {
                    seq += 1;
                    if backend.wal_append(&wal_record(seq, len), t).is_ok() {
                        unsynced.push(seq);
                    } else {
                        seq -= 1; // region full; nothing appended
                    }
                }
                Op::Sync => {
                    backend.wal_sync(t).unwrap();
                    synced.append(&mut unsynced);
                }
                Op::SnapBegin(wal_kind) => {
                    let kind = if wal_kind {
                        SnapshotKind::WalSnapshot
                    } else {
                        SnapshotKind::OnDemand
                    };
                    if backend.snapshot_begin(kind, t).is_ok() {
                        snap_active = true;
                        pending_kind = kind;
                        pending_chunks.clear();
                        // Records at or below this sequence number are
                        // absorbed if (and only if) the snapshot commits.
                        fork_seq = seq;
                    }
                }
                Op::SnapChunk(len) => {
                    if snap_active {
                        let chunk = vec![0xC5u8; len as usize];
                        if backend.snapshot_chunk(&chunk, t).is_ok() {
                            pending_chunks.extend_from_slice(&chunk);
                        }
                    }
                }
                Op::SnapCommit => {
                    if snap_active {
                        backend.snapshot_commit(t).unwrap();
                        snap_active = false;
                        committed.insert(pending_kind, pending_chunks.clone());
                        if pending_kind == SnapshotKind::WalSnapshot {
                            // The snapshot absorbed every pre-fork record;
                            // the WAL tail advanced past them.
                            synced.retain(|s| *s > fork_seq);
                            unsynced.retain(|s| *s > fork_seq);
                        }
                    }
                }
                Op::SnapAbort => {
                    if snap_active {
                        backend.snapshot_abort(t).unwrap();
                        snap_active = false;
                    }
                }
            }
        }
        drop(backend); // crash

        let mut rec = PassthruBackend::recover(
            Arc::clone(&dev),
            SharedClock::new(),
            PassthruConfig::default(),
        )
        .unwrap();

        // Committed snapshots are intact. (A zero-length commit is
        // indistinguishable from "no snapshot" — the engine never produces
        // one; the RDB format is never empty.)
        for (kind, bytes) in &committed {
            let (got, _) = rec.load_snapshot(*kind, t).unwrap();
            if bytes.is_empty() {
                prop_assert!(got.is_none() || got.as_deref() == Some(&[][..]));
            } else {
                prop_assert_eq!(
                    got.as_deref(),
                    Some(bytes.as_slice()),
                    "snapshot {:?} lost or corrupted",
                    kind
                );
            }
        }

        // The synced WAL prefix of the live generation replays, in order.
        let (wal, _) = rec.load_wal(t).unwrap();
        let seqs: Vec<u64> = replay(&wal).iter().map(|r| r.seq()).collect();
        prop_assert!(
            seqs.len() >= synced.len(),
            "synced records lost: got {:?}, expected at least {:?}",
            seqs,
            synced
        );
        prop_assert_eq!(&seqs[..synced.len()], synced.as_slice());
        for w in seqs.windows(2) {
            prop_assert!(w[0] < w[1], "replay out of order: {:?}", seqs);
        }
    }

    #[test]
    fn wal_log_append_truncate_invariants(
        ops in proptest::collection::vec(
            prop_oneof![
                4 => (1u64..9000).prop_map(|n| (0u8, n)),  // append n bytes
                1 => (0u64..100).prop_map(|p| (1u8, p)),   // truncate to head - p%
            ],
            1..200
        ),
    ) {
        let region_lbas = 64u64; // 256 KiB region
        let mut log = WalLog::new(10, region_lbas);
        for (kind, arg) in ops {
            match kind {
                0 => {
                    let before = log.head();
                    match log.append(&vec![7u8; arg as usize]) {
                        Ok(pages) => {
                            prop_assert_eq!(log.head(), before + arg);
                            for pw in &pages {
                                prop_assert!(pw.lba >= 10 && pw.lba < 10 + region_lbas);
                                prop_assert_eq!(pw.data.len(), 4096);
                            }
                        }
                        Err(_) => {
                            // Full: state unchanged.
                            prop_assert_eq!(log.head(), before);
                        }
                    }
                }
                _ => {
                    let span = log.head() - log.tail();
                    let new_tail = log.tail() + span * (arg % 100) / 100;
                    let dead = log.truncate_to(new_tail);
                    for (lba, n) in dead {
                        prop_assert!(lba >= 10 && lba + n <= 10 + region_lbas);
                        prop_assert!(n >= 1);
                    }
                    prop_assert_eq!(log.tail(), new_tail);
                }
            }
            prop_assert!(log.live_bytes() <= log.capacity());
            prop_assert!(log.tail() <= log.head());
        }
    }
}
