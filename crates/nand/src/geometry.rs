//! Physical layout and address arithmetic.

/// Physical layout of the emulated NAND array.
///
/// The default mirrors the paper's FEMU configuration: 8 channels with
/// 8 dies per channel, 4 KiB pages, and enough blocks for a 180 GB device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Number of channels.
    pub channels: u32,
    /// Dies per channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: u32,
}

impl Default for Geometry {
    fn default() -> Self {
        // 8 ch × 8 dies × 720 blocks × 1024 pages × 4 KiB = 180 GiB.
        Geometry {
            channels: 8,
            dies_per_channel: 8,
            blocks_per_die: 720,
            pages_per_block: 1024,
            page_size: 4096,
        }
    }
}

impl Geometry {
    /// The paper's FEMU device scaled by `ratio` in capacity: same
    /// channel/die parallelism and page size, proportionally fewer blocks
    /// per die (rounded down to a multiple of 8 so superblock/RU sizes
    /// divide evenly).
    pub fn scaled(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        let full = Geometry::default();
        // Floor of 16 blocks/die: keeps ≥16 die-wide superblocks so FDP
        // devices retain room for 8 placement streams plus GC headroom.
        let blocks = ((full.blocks_per_die as f64 * ratio) as u32).max(16);
        Geometry {
            blocks_per_die: blocks - blocks % 8,
            ..full
        }
    }

    /// A small geometry for unit tests and quick experiments
    /// (2 ch × 2 dies × 16 blocks × 64 pages × 4 KiB = 16 MiB).
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            dies_per_channel: 2,
            blocks_per_die: 16,
            pages_per_block: 64,
            page_size: 4096,
        }
    }

    /// Total number of dies.
    pub fn dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total number of erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.dies() as u64 * self.blocks_per_die as u64
    }

    /// Total number of pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Flat die index for `(channel, die_in_channel)`.
    pub fn die_index(&self, channel: u32, die: u32) -> u32 {
        debug_assert!(channel < self.channels && die < self.dies_per_channel);
        channel * self.dies_per_channel + die
    }

    /// Channel that a flat die index belongs to.
    pub fn channel_of_die(&self, die_idx: u32) -> u32 {
        die_idx / self.dies_per_channel
    }

    /// Decodes a flat block index into a [`BlockPtr`].
    pub fn block_ptr(&self, flat: u64) -> BlockPtr {
        debug_assert!(flat < self.total_blocks());
        BlockPtr {
            die: (flat / self.blocks_per_die as u64) as u32,
            block: (flat % self.blocks_per_die as u64) as u32,
        }
    }

    /// Encodes a [`BlockPtr`] to a flat block index.
    pub fn block_flat(&self, b: BlockPtr) -> u64 {
        b.die as u64 * self.blocks_per_die as u64 + b.block as u64
    }

    /// Decodes a flat page index into a [`PagePtr`].
    pub fn page_ptr(&self, flat: u64) -> PagePtr {
        debug_assert!(flat < self.total_pages());
        let block_flat = flat / self.pages_per_block as u64;
        let b = self.block_ptr(block_flat);
        PagePtr {
            die: b.die,
            block: b.block,
            page: (flat % self.pages_per_block as u64) as u32,
        }
    }

    /// Encodes a [`PagePtr`] to a flat page index.
    pub fn page_flat(&self, p: PagePtr) -> u64 {
        (p.die as u64 * self.blocks_per_die as u64 + p.block as u64) * self.pages_per_block as u64
            + p.page as u64
    }
}

/// Address of an erase block: `(die, block-within-die)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockPtr {
    /// Flat die index (`channel * dies_per_channel + die`).
    pub die: u32,
    /// Block index within the die.
    pub block: u32,
}

/// Address of a NAND page: `(die, block, page-within-block)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PagePtr {
    /// Flat die index.
    pub die: u32,
    /// Block index within the die.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl PagePtr {
    /// The block containing this page.
    pub fn block_ptr(&self) -> BlockPtr {
        BlockPtr {
            die: self.die,
            block: self.block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_paper_config() {
        let g = Geometry::default();
        assert_eq!(g.channels, 8);
        assert_eq!(g.dies_per_channel, 8);
        assert_eq!(g.dies(), 64);
        assert_eq!(g.page_size, 4096);
        // 180 GiB raw capacity.
        assert_eq!(g.capacity_bytes(), 180 * 1024 * 1024 * 1024);
    }

    #[test]
    fn counts_are_consistent() {
        let g = Geometry::tiny();
        assert_eq!(g.dies(), 4);
        assert_eq!(g.total_blocks(), 64);
        assert_eq!(g.total_pages(), 64 * 64);
        assert_eq!(g.capacity_bytes(), 16 * 1024 * 1024);
        assert_eq!(g.block_bytes(), 256 * 1024);
    }

    #[test]
    fn die_channel_mapping() {
        let g = Geometry::default();
        assert_eq!(g.die_index(0, 0), 0);
        assert_eq!(g.die_index(1, 0), 8);
        assert_eq!(g.die_index(7, 7), 63);
        assert_eq!(g.channel_of_die(0), 0);
        assert_eq!(g.channel_of_die(8), 1);
        assert_eq!(g.channel_of_die(63), 7);
    }

    #[test]
    fn block_roundtrip() {
        let g = Geometry::tiny();
        for flat in 0..g.total_blocks() {
            let p = g.block_ptr(flat);
            assert_eq!(g.block_flat(p), flat);
            assert!(p.die < g.dies());
            assert!(p.block < g.blocks_per_die);
        }
    }

    #[test]
    fn page_roundtrip() {
        let g = Geometry::tiny();
        for flat in (0..g.total_pages()).step_by(7) {
            let p = g.page_ptr(flat);
            assert_eq!(g.page_flat(p), flat);
            assert!(p.page < g.pages_per_block);
        }
    }

    #[test]
    fn page_block_relationship() {
        let g = Geometry::tiny();
        let p = g.page_ptr(g.pages_per_block as u64 + 3);
        assert_eq!(p.block_ptr(), BlockPtr { die: 0, block: 1 });
        assert_eq!(p.page, 3);
    }
}
