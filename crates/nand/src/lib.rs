//! NAND flash geometry and timing model.
//!
//! This crate is the lowest layer of the emulated FDP SSD, standing in for
//! the NAND back-end of the FEMU v9.0 emulator the paper uses. It provides:
//!
//! * [`Geometry`] — channels × dies × blocks × pages layout and address
//!   arithmetic ([`PagePtr`], [`BlockPtr`]).
//! * [`Latencies`] — NAND operation latencies; the defaults are exactly the
//!   paper's FEMU configuration (40 µs page read, 200 µs page program,
//!   2 ms block erase) plus a channel-transfer term.
//! * [`NandTimer`] — a timing oracle that answers "when does this page
//!   read/program/erase complete?" by FCFS-queueing each die and each
//!   channel (see `slimio_des::resource`).
//!
//! The data plane (actual bytes) lives one layer up in `slimio-nvme`; this
//! crate is purely about *where* pages are and *when* operations finish.

#![warn(missing_docs)]

pub mod geometry;
pub mod timing;

pub use geometry::{BlockPtr, Geometry, PagePtr};
pub use timing::{Latencies, NandTimer};
