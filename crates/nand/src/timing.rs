//! Per-die / per-channel operation timing.

use slimio_des::{FcfsServer, SimTime};

use crate::geometry::Geometry;

/// NAND operation latencies.
///
/// Defaults are the paper's FEMU settings: 40 µs page read, 200 µs page
/// program, 2 ms block erase. The channel transfer time models moving one
/// page across the channel bus (4 KiB at ~1 GB/s ≈ 4 µs, FEMU's default
/// NVMe-side transfer speed class).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// Page read (cell array → page register).
    pub page_read: SimTime,
    /// Page program (page register → cell array).
    pub page_program: SimTime,
    /// Block erase.
    pub block_erase: SimTime,
    /// Channel transfer of one page (controller ↔ page register).
    pub channel_xfer: SimTime,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            page_read: SimTime::from_micros(40),
            page_program: SimTime::from_micros(200),
            block_erase: SimTime::from_millis(2),
            channel_xfer: SimTime::from_micros(4),
        }
    }
}

/// Timing oracle over the NAND array.
///
/// Each die and each channel is an FCFS server. Operations serialize on
/// their die; transfers serialize on their channel. This reproduces the
/// property that matters to the paper: a die busy with GC (erase + copies)
/// delays every host I/O routed to it, while other dies proceed.
#[derive(Clone, Debug)]
pub struct NandTimer {
    geometry: Geometry,
    latencies: Latencies,
    dies: Vec<FcfsServer>,
    channels: Vec<FcfsServer>,
}

impl NandTimer {
    /// Creates an idle timer for the given geometry and latencies.
    pub fn new(geometry: Geometry, latencies: Latencies) -> Self {
        NandTimer {
            geometry,
            latencies,
            dies: vec![FcfsServer::new(); geometry.dies() as usize],
            channels: vec![FcfsServer::new(); geometry.channels as usize],
        }
    }

    /// The geometry this timer models.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The configured latencies.
    pub fn latencies(&self) -> &Latencies {
        &self.latencies
    }

    /// Completion time of a page read issued at `now` to `die`.
    ///
    /// Sequence: die busy for `page_read`, then the channel moves the page
    /// to the controller.
    pub fn read_page(&mut self, die: u32, now: SimTime) -> SimTime {
        let ch = self.geometry.channel_of_die(die) as usize;
        let (_, cell_done) = self.dies[die as usize].serve(now, self.latencies.page_read);
        let (_, xfer_done) = self.channels[ch].serve(cell_done, self.latencies.channel_xfer);
        xfer_done
    }

    /// Completion time of a page program issued at `now` to `die`.
    ///
    /// Sequence: channel transfer into the page register, then the die
    /// programs.
    pub fn program_page(&mut self, die: u32, now: SimTime) -> SimTime {
        let ch = self.geometry.channel_of_die(die) as usize;
        let (_, xfer_done) = self.channels[ch].serve(now, self.latencies.channel_xfer);
        let (_, prog_done) = self.dies[die as usize].serve(xfer_done, self.latencies.page_program);
        prog_done
    }

    /// Completion time of a block erase issued at `now` to `die`.
    pub fn erase_block(&mut self, die: u32, now: SimTime) -> SimTime {
        let (_, done) = self.dies[die as usize].serve(now, self.latencies.block_erase);
        done
    }

    /// Completion time of an on-die page copy (GC relocation: read + program
    /// on the same die, no channel crossing when copyback is available).
    pub fn copy_page(&mut self, die: u32, now: SimTime) -> SimTime {
        let service = self.latencies.page_read + self.latencies.page_program;
        let (_, done) = self.dies[die as usize].serve(now, service);
        done
    }

    /// When `die` next becomes idle.
    pub fn die_free_at(&self, die: u32) -> SimTime {
        self.dies[die as usize].next_free()
    }

    /// Earliest time any die is free (device-level admission hint).
    pub fn earliest_die_free(&self) -> SimTime {
        self.dies
            .iter()
            .map(FcfsServer::next_free)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Aggregate busy time across dies (for utilization reporting).
    pub fn total_die_busy(&self) -> SimTime {
        self.dies
            .iter()
            .fold(SimTime::ZERO, |acc, d| acc + d.busy_time())
    }

    /// Mean die utilization over `[0, horizon]`.
    pub fn die_utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO || self.dies.is_empty() {
            return 0.0;
        }
        self.total_die_busy().as_nanos() as f64
            / (horizon.as_nanos() as f64 * self.dies.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> NandTimer {
        NandTimer::new(Geometry::tiny(), Latencies::default())
    }

    #[test]
    fn default_latencies_match_femu() {
        let l = Latencies::default();
        assert_eq!(l.page_read, SimTime::from_micros(40));
        assert_eq!(l.page_program, SimTime::from_micros(200));
        assert_eq!(l.block_erase, SimTime::from_millis(2));
    }

    #[test]
    fn single_read_latency() {
        let mut t = timer();
        let done = t.read_page(0, SimTime::ZERO);
        assert_eq!(done, SimTime::from_micros(44)); // 40 read + 4 xfer
    }

    #[test]
    fn single_program_latency() {
        let mut t = timer();
        let done = t.program_page(0, SimTime::ZERO);
        assert_eq!(done, SimTime::from_micros(204)); // 4 xfer + 200 program
    }

    #[test]
    fn programs_to_same_die_serialize() {
        let mut t = timer();
        let d1 = t.program_page(0, SimTime::ZERO);
        let d2 = t.program_page(0, SimTime::ZERO);
        assert!(d2 > d1);
        // Second program waits for the die: 4 xfer done at 8, die free at
        // 204, program ends at 404.
        assert_eq!(d2, SimTime::from_micros(404));
    }

    #[test]
    fn programs_to_different_dies_overlap() {
        let mut t = timer();
        // Dies 0 and 2 are on different channels in the tiny geometry
        // (2 dies per channel).
        let d1 = t.program_page(0, SimTime::ZERO);
        let d2 = t.program_page(2, SimTime::ZERO);
        assert_eq!(d1, d2); // fully parallel
    }

    #[test]
    fn same_channel_dies_share_transfer_bus() {
        let mut t = timer();
        // Dies 0 and 1 share channel 0: second transfer queues 4us.
        let d1 = t.program_page(0, SimTime::ZERO);
        let d2 = t.program_page(1, SimTime::ZERO);
        assert_eq!(d1, SimTime::from_micros(204));
        assert_eq!(d2, SimTime::from_micros(208));
    }

    #[test]
    fn erase_blocks_die_for_two_ms() {
        let mut t = timer();
        let e = t.erase_block(3, SimTime::ZERO);
        assert_eq!(e, SimTime::from_millis(2));
        // A read behind the erase waits.
        let r = t.read_page(3, SimTime::ZERO);
        assert_eq!(r, SimTime::from_millis(2) + SimTime::from_micros(44));
    }

    #[test]
    fn gc_copy_occupies_die() {
        let mut t = timer();
        let c = t.copy_page(0, SimTime::ZERO);
        assert_eq!(c, SimTime::from_micros(240));
        assert_eq!(t.die_free_at(0), c);
    }

    #[test]
    fn utilization_reporting() {
        let mut t = timer();
        t.program_page(0, SimTime::ZERO);
        let horizon = SimTime::from_micros(204);
        let u = t.die_utilization(horizon);
        // One die busy 200us of 204, across 4 dies.
        assert!((u - 200.0 / 204.0 / 4.0).abs() < 1e-9, "{u}");
    }
}
